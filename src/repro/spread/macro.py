"""Macro-op replay: the compiled fast path for cached spread plans.

On a :class:`~repro.spread.plan_cache.SpreadPlanCache` hit the directive
layer normally re-walks the cached plan and rebuilds the full per-chunk
object graph — task bodies, wait lists, present-table lookups — on every
launch.  That object churn is what capped warm launches at ~16k/s.

This module compiles a cached plan (once, on first replay) into a flat,
immutable **macro-op program**: a tuple of slotted records plus parallel
NumPy arrays of op-kind codes, device ids and byte-interval bounds.  A
replay then runs a tight interpreter loop over the records:

* present-table resolutions (entry + kernel view per map clause) are cached
  per record and validated against :attr:`DeviceDataEnv.epoch` — the
  structural counter the data environment bumps on insert/remove/purge.
  Unchanged epoch ⟺ every captured entry is still live and still covers the
  same section, so lookups collapse to one integer compare;
* all chunk processes of the directive are created deferred and scheduled
  with a single :meth:`Simulator.schedule_batch` heap transaction (one
  ``heapq`` push over a reserved sequence range) instead of one push per
  chunk;
* per-chunk bookkeeping (task-context children, taskgroup membership,
  runtime task registries) is batched after the loop.

**Bit identity.** The replay path must be observationally identical to the
object path: same simulated clock, same trace, same event ordering.  It
therefore only engages when nothing can observe the (deliberately skipped)
per-op bookkeeping: no tools registered, no sanitizer, no fault injector,
no lost devices and no reductions.  Any of those → the object path runs,
unchanged.  ``depend`` clauses are replayed through the real
:class:`~repro.openmp.depend.DependTracker` with ``submit_spread``'s exact
two-phase protocol (all chunks resolve against the pre-directive frontier,
then register).  The fast kernel body also re-validates the environment
epoch *at run time* (the present table can change between submit and run)
and falls back to the generic :func:`repro.openmp.exec_ops.kernel_op`
generator when it moved.

``REPRO_MACRO_OPS=0`` (or ``--no-macro-ops``) disables the path globally;
``tests/spread/test_macro_replay.py`` enforces bit identity against it.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

import numpy as np

from repro.openmp import exec_ops
from repro.openmp.depend import compile_deps
from repro.sim import timeline as _timeline
from repro.sim.engine import Process
from repro.util.intervals import batch_widths, pack_intervals

# Op-kind codes for the flat program arrays.
OP_KERNEL = 0
OP_ENTER = 1
OP_EXIT = 2
OP_UPDATE = 3

KIND_NAMES = {OP_KERNEL: "kernel", OP_ENTER: "enter", OP_EXIT: "exit",
              OP_UPDATE: "update"}


class MacroRecord:
    """One lowered chunk op of a macro program.

    ``steady`` caches the present-table resolution for the record's device:
    ``(epoch, held, kenv, found)`` where ``held`` is the per-clause
    ``(clause, interval, entry)`` list, ``kenv`` the kernel view
    environment, and ``found`` the distinct entries to gather waits from
    and register in-flight work on.  ``held``/``kenv`` are None when some
    map was absent at resolution time (the replay then runs the generic op
    generator).  The cache is validated against the live environment epoch
    before every use.
    """

    __slots__ = ("kind", "device_id", "lo", "hi", "maps", "deps", "name",
                 "label", "chunk_index", "extra", "steady")

    def __init__(self, kind: int, device_id: int, lo: int, hi: int,
                 maps, deps, name: str, label: str, chunk_index: int,
                 extra=None) -> None:
        self.kind = kind
        self.device_id = device_id
        self.lo = lo
        self.hi = hi
        self.maps = maps
        self.deps = deps
        self.name = name
        self.label = label
        self.chunk_index = chunk_index
        self.extra = extra
        self.steady = None


class MacroProgram:
    """A compiled directive: records plus flat parallel arrays.

    The arrays carry the structural facts of the program — op kinds, target
    devices, iteration/section bounds and the CSR-packed concrete map
    intervals — so whole-program checks are single vectorized passes
    instead of per-op Python loops.
    """

    __slots__ = ("records", "kinds", "devices", "bounds", "map_bounds",
                 "map_index", "total_bytes", "info", "timeline", "dep_plan")

    def __init__(self, records: Sequence[MacroRecord]) -> None:
        self.records: Tuple[MacroRecord, ...] = tuple(records)
        # memoized directive-info dict (runtime.directive_info_for), filled
        # in by the directive layer on first replay
        self.info = None
        # lazy per-launch-shape fused timelines (repro.sim.timeline) and the
        # flattened depend clauses (False = program has none)
        self.timeline = None
        self.dep_plan = None
        n = len(self.records)
        self.kinds = np.fromiter((r.kind for r in self.records),
                                 dtype=np.int8, count=n)
        self.devices = np.fromiter((r.device_id for r in self.records),
                                   dtype=np.int32, count=n)
        self.bounds = np.empty((n, 2), dtype=np.int64)
        for i, r in enumerate(self.records):
            self.bounds[i, 0] = r.lo
            self.bounds[i, 1] = r.hi
        flat = [iv for r in self.records for _c, iv in r.maps]
        self.map_bounds = pack_intervals(flat)
        counts = np.fromiter((len(r.maps) for r in self.records),
                             dtype=np.int64, count=n)
        self.map_index = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=self.map_index[1:])
        self.total_bytes = int(batch_widths(self.map_bounds).sum()) \
            if len(flat) else 0

    def __len__(self) -> int:
        return len(self.records)

    def well_formed(self) -> bool:
        """Vectorized structural validation over the whole program."""
        if len(self.records) == 0:
            return True
        if not bool(np.all(self.bounds[:, 0] <= self.bounds[:, 1])):
            return False
        if self.map_bounds.shape[0] and not bool(
                np.all(self.map_bounds[:, 0] < self.map_bounds[:, 1])):
            return False
        return bool(np.all(self.devices >= 0))


# ---------------------------------------------------------------------------
# engagement + compilation
# ---------------------------------------------------------------------------

def engaged(rt) -> bool:
    """True when the replay path is observationally safe to use.

    Tools, the sanitizer and the fault injector all observe (or perturb)
    per-op bookkeeping the fast path skips; lost devices make cached
    resolutions meaningless.  Any of them present → object path.
    """
    return (rt.macro_ops and not rt.tools and rt.sanitizer is None
            and rt.fault_injector is None and not rt._lost_devices)


def _compile(plan, kind: int, label_of, extra_of=None) -> Optional[MacroProgram]:
    records = []
    for cp in plan.chunk_plans:
        chunk = cp.chunk
        lo = chunk.start if kind == OP_KERNEL else chunk.interval.start
        records.append(MacroRecord(
            kind, chunk.device, lo, chunk.interval.stop, cp.maps,
            tuple(cp.deps), cp.name, cp.label or label_of(chunk),
            chunk.index, extra=extra_of(cp) if extra_of is not None else None))
    prog = MacroProgram(records)
    return prog if prog.well_formed() else None


def compile_exec(plan) -> Optional[MacroProgram]:
    """Compile a ``target spread`` execution plan (kernel per chunk)."""
    return _compile(plan, OP_KERNEL, lambda c: f"spread@{c.device}")


def compile_data(plan, kind: int, label: str) -> Optional[MacroProgram]:
    """Compile an enter/exit data plan; *label* matches the object path's
    op labels (e.g. ``enter-spread`` → ``enter-spread@<dev>``)."""
    return _compile(plan, kind, lambda c: f"{label}@{c.device}")


def compile_update(plan) -> Optional[MacroProgram]:
    """Compile a ``target update spread`` plan (sections in ``extra``)."""
    return _compile(plan, OP_UPDATE, lambda c: f"update-spread@{c.device}",
                    extra_of=lambda cp: cp.extra)


def program_for(cache, cell, compile_fn):
    """Cached program from a plan-cache *cell*, compiling on first use.

    The cell is the ``[plan, macro_state]`` pair
    :meth:`SpreadPlanCache.lookup` returned for the directive's key, so no
    second key hash is paid.  Uncompilable plans leave a ``False`` sentinel
    in the cell so the compile attempt is not repeated on every hit.
    Returns None when the object path must run.
    """
    prog = cell[1]
    if prog is None:
        prog = compile_fn()
        cell[1] = prog if prog is not None else False
        if prog is None:
            return None
        cache.macro_compiles += 1
    elif prog is False:
        return None
    cache.macro_replays += 1
    return prog


# ---------------------------------------------------------------------------
# replay interpreter
# ---------------------------------------------------------------------------

def _quiet_lookup(env, var, interval):
    """Side-effect-free present lookup: no counters, no memo writes.

    Returns None for absent *or partial* sections — the latter fall back to
    the generic op generator, which re-raises the proper mapping error.
    """
    memo = env._memo.get(var.key)
    if memo is not None and memo.section.contains(interval):
        return memo
    for entry in env._entries.get(var.key, ()):
        if entry.section.contains(interval):
            return entry
    return None


def _resolve_steady(env, rec: MacroRecord):
    """Resolve a record's maps against the current present table."""
    held = []
    found = []
    kenv = {}
    complete = True
    for clause, interval in rec.maps:
        entry = _quiet_lookup(env, clause.var, interval)
        if entry is None:
            complete = False
            continue
        found.append(entry)
        held.append((clause, interval, entry))
        kenv[clause.var.name] = entry.view()
    if not complete:
        held = None
        kenv = None
    return (env.epoch, held, kenv, tuple(found))


def _gather_waits(found) -> List:
    """Pending-op waits over *found* entries, pruned and deduplicated.

    Mirrors ``gather_entry_waits`` + the dedup loop in ``TaskCtx.submit``:
    completed events are pruned in place, order of first occurrence is
    preserved.
    """
    waits: List = []
    for entry in found:
        inflight = entry.inflight
        if inflight:
            # One fused pass: gather unprocessed events (first-occurrence
            # order, deduplicated) and note whether a prune is due.
            # _processed is Event's backing slot; reading it directly
            # skips one property descriptor call per event, and the prune
            # rebuild (a listcomp frame on 3.11) only runs when something
            # actually completed.
            prune = False
            for ev in inflight:
                if ev._processed:
                    prune = True
                elif ev not in waits:
                    waits.append(ev)
            if prune:
                inflight[:] = [ev for ev in inflight if not ev._processed]
    return waits


def _merge_dep_waits(waits: List, resolved) -> None:
    """Append depend-resolved events to *waits* with ``TaskCtx.submit``'s
    filter: skip completed events and first-occurrence duplicates."""
    for ev in resolved:
        if not ev._processed and ev not in waits:
            waits.append(ev)


def _plain_body(rt, waits, opgen) -> Generator:
    """Task-body wrapper identical to ``TaskCtx.submit``'s (minus tooling).

    Launch-invariant pieces (sim, host overhead) are looked up when the
    body first runs — the untimed drain — not on the submit fast path.
    """
    sim = rt.sim
    overhead = rt.cost_model.host_task_overhead
    if overhead > 0:
        yield sim.timeout(overhead)
    if waits:
        yield sim.all_of(waits)
    return (yield from opgen)


def _fast_kernel_body(rt, rec: MacroRecord, kernel, cfg, fuse: bool,
                      waits, steady) -> Generator:
    """Steady-state kernel chunk: launch directly on cached views.

    Replicates ``kernel_op``'s phases for the all-present case — refcount
    holds, launch, refcount releases — with the epoch compare standing in
    for the per-map lookups.  If the present table changed since submit,
    delegate to the generic op (generators are lazy, so creating it here is
    exactly the object path).  *steady* is the resolution captured at
    submit time; everything else is fetched when the body runs.
    """
    sim = rt.sim
    overhead = rt.cost_model.host_task_overhead
    if overhead > 0:
        yield sim.timeout(overhead)
    if waits:
        yield sim.all_of(waits)
    epoch, held, kenv, _found = steady
    env = rt.dataenvs[rec.device_id]
    if env.epoch != epoch:
        yield from exec_ops.kernel_op(
            rt, rec.device_id, kernel, rec.lo, rec.hi, rec.maps,
            launch=cfg, fuse_transfers=fuse, label=rec.label)
        return
    # Implicit entry: everything present, so no alloc sync, no copies —
    # just the refcount holds the object path's enter would take.
    for _clause, _interval, entry in held:
        entry.refcount += 1
    dev = rt.devices[rec.device_id]
    yield from dev.launch_kernel(kernel, rec.lo, rec.hi, kenv, launch=cfg)
    # Implicit exit: the held refcounts usually just drop back.  A count
    # hitting zero means this directive was the last user — run the full
    # exit protocol (copy-back + release) exactly as kernel_op does.
    copyback = []
    to_release = []
    for clause, interval, entry in held:
        if entry.refcount > 1:
            entry.refcount -= 1
        else:
            entry, deleted = env.exit(clause.var, interval)
            if deleted:
                if clause.map_type.copies_out:
                    copyback.append((entry.buffer,
                                     entry.local_slice(interval),
                                     clause.var.array, interval.as_slice(),
                                     clause.var.name))
                to_release.append(entry)
    if copyback:
        yield from exec_ops._issue_copies(rt, dev, copyback, h2d=False,
                                          fuse=fuse, label=rec.label)
    if to_release:
        yield from exec_ops._release_with_sync(rt, rec.device_id, to_release)


def _resolve_deps_compiled(prog: MacroProgram, depend):
    """Batched resolve of the program's depend clauses, or None if it has
    none.  Resolution is read-only against the pre-directive frontier (the
    two-phase protocol registers nothing until every record resolved), so
    hoisting all records' resolves before the creation loop is
    order-equivalent to the interleaved sequential calls."""
    cd = prog.dep_plan
    if cd is None:
        cd = compile_deps(prog.records)
        prog.dep_plan = cd if cd is not None else False
    if not cd:
        return None
    return depend.resolve_compiled(cd)


def _batch_bookkeeping(ctx, rt, procs) -> None:
    """The per-task registrations of ``TaskCtx.submit``, batched."""
    if not procs:
        return
    ctx.children.extend(procs)
    for group in ctx.groups:
        group.members.extend(procs)
        group.has_device_ops = True
    rt.note_tasks(procs)
    rt.note_device_ops(procs)


def replay_exec(ctx, prog: MacroProgram, kernel, cfg, fuse: bool,
                directive_id: int) -> List[Process]:
    """Interpret a compiled ``target spread`` program.

    Creates every chunk process deferred, then commits all starts in one
    ``schedule_batch`` heap transaction.  Per-record resolution is
    sequential so record *i+1*'s wait gathering sees record *i*'s in-flight
    registration — the per-entry chaining nowait launches rely on.
    """
    rt = ctx.rt
    sim = rt.sim
    envs = rt.dataenvs
    depend = rt.depend
    # Walkers skip the per-op begin/end and causal joins a recorder or
    # join hook would observe, so fusion needs quiet on top of engaged().
    fused = (rt.fused_timeline and sim.recorder is None
             and sim.cp_hook is None)
    tl = None
    dep_waits = _resolve_deps_compiled(prog, depend)
    procs: List[Process] = []
    starts = []
    for i, rec in enumerate(prog.records):
        env = envs[rec.device_id]
        steady = rec.steady
        if steady is None or steady[0] != env.epoch:
            steady = _resolve_steady(env, rec)
            rec.steady = steady
        found = steady[3]
        waits = _gather_waits(found)
        if rec.deps:
            _merge_dep_waits(waits, dep_waits[i])
        if steady[1] is not None:
            if fused:
                if tl is None:
                    tl = _timeline.kernel_timeline(rt, prog, kernel, cfg)
                proc = _timeline.TimelineProc.spawn(
                    sim, rt, rec, kernel, cfg, fuse, waits, steady, tl, i,
                    (directive_id, rec.chunk_index, None))
            else:
                gen = _fast_kernel_body(rt, rec, kernel, cfg, fuse, waits,
                                        steady)
                proc = Process.spawn_task(sim, gen, rec.name,
                                          (directive_id, rec.chunk_index,
                                           None))
        else:
            gen = _plain_body(rt, waits, exec_ops.kernel_op(
                rt, rec.device_id, kernel, rec.lo, rec.hi, rec.maps,
                launch=cfg, fuse_transfers=fuse, label=rec.label))
            proc = Process.spawn_task(sim, gen, rec.name,
                                      (directive_id, rec.chunk_index, None))
        for entry in found:
            entry.inflight.append(proc)
        starts.append(proc._start)
        procs.append(proc)
    # Two-phase depend protocol: sibling chunks all resolved against the
    # pre-directive frontier above; only now do they register their own
    # records (submit_spread's exact ordering).
    if dep_waits is not None:
        depend.register_compiled(prog.dep_plan, procs)
    sim.schedule_batch(starts)
    _batch_bookkeeping(ctx, rt, procs)
    return procs


def replay_data(ctx, prog: MacroProgram, fuse: bool,
                directive_id: int) -> List[Process]:
    """Interpret a compiled enter/exit/update data program."""
    rt = ctx.rt
    sim = rt.sim
    envs = rt.dataenvs
    depend = rt.depend
    dep_waits = _resolve_deps_compiled(prog, depend)
    procs: List[Process] = []
    starts = []
    for i, rec in enumerate(prog.records):
        env = envs[rec.device_id]
        kind = rec.kind
        if kind == OP_ENTER:
            opgen = exec_ops.enter_op(rt, rec.device_id, rec.maps,
                                      fuse_transfers=fuse, label=rec.label)
        elif kind == OP_EXIT:
            opgen = exec_ops.exit_op(rt, rec.device_id, rec.maps,
                                     fuse_transfers=fuse, label=rec.label)
        else:
            to_sections, from_sections = rec.extra
            opgen = exec_ops.update_op(rt, rec.device_id, to_sections,
                                       from_sections, fuse_transfers=fuse,
                                       label=rec.label)
        found = []
        for clause, interval in rec.maps:
            entry = _quiet_lookup(env, clause.var, interval)
            if entry is not None:
                found.append(entry)
        waits = _gather_waits(found)
        if rec.deps:
            _merge_dep_waits(waits, dep_waits[i])
        gen = _plain_body(rt, waits, opgen)
        proc = Process.spawn_task(sim, gen, rec.name,
                                  (directive_id, rec.chunk_index, None))
        for entry in found:
            entry.inflight.append(proc)
        starts.append(proc._start)
        procs.append(proc)
    if dep_waits is not None:
        depend.register_compiled(prog.dep_plan, procs)
    sim.schedule_batch(starts)
    _batch_bookkeeping(ctx, rt, procs)
    return procs
