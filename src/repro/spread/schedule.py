"""Spread schedules: how an iteration range is chunked over devices.

``spread_schedule(static, chunk_size)`` performs the paper's round-robin
distribution (Section III-B.1): consecutive chunks of ``chunk_size``
iterations are dealt to the devices *in devices-list order* — the order of
distribution is determined by the position in the list, not by the device
identifier.  The worked example from the paper (N=14, loop ``1..N-1``):

* ``devices(2,0,1)``, ``spread_schedule(static, 4)`` ->
  iterations 1-4 to device 2, 5-8 to device 0, 9-12 to device 1;
* ``spread_schedule(static, 2)`` ->
  1-2 -> 2, 3-4 -> 0, 5-6 -> 1, 7-8 -> 2, 9-10 -> 0, 11-12 -> 1.

Two §IX future-work schedules are provided as extensions:
:class:`IrregularStaticSchedule` (explicit per-chunk sizes) and
:class:`DynamicSchedule` (devices pull chunks as they become free).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.util.errors import OmpScheduleError
from repro.util.intervals import Interval


@dataclass(frozen=True)
class Chunk:
    """One unit of distributed work/data.

    ``device`` is the assigned device id, or ``None`` for dynamically
    scheduled chunks (assigned at execution time).
    """

    index: int
    interval: Interval
    device: Optional[int]

    @property
    def start(self) -> int:
        return self.interval.start

    @property
    def size(self) -> int:
        return len(self.interval)


def validate_devices(devices: Sequence[int], num_devices: int) -> List[int]:
    """Check a ``devices(...)`` clause list against the node."""
    devs = list(devices)
    if not devs:
        raise OmpScheduleError("devices() clause must list at least one device")
    seen = set()
    for d in devs:
        if not isinstance(d, int):
            raise OmpScheduleError(f"devices(): non-integer device id {d!r}")
        if not 0 <= d < num_devices:
            raise OmpScheduleError(
                f"devices(): device id {d} out of range (node has "
                f"{num_devices} devices)")
        if d in seen:
            raise OmpScheduleError(f"devices(): duplicate device id {d}")
        seen.add(d)
    return devs


class SpreadSchedule:
    """Base class: produces the chunk list for an iteration range."""

    kind = "abstract"
    is_extension = False

    @property
    def signature(self):
        """Hashable structural identity for launch-plan caching, or None
        when the chunking is not a pure function of the schedule parameters
        (the dynamic schedule assigns devices at execution time)."""
        return None

    def chunks(self, lo: int, hi: int, devices: Sequence[int]) -> List[Chunk]:
        raise NotImplementedError

    def _check_range(self, lo: int, hi: int) -> None:
        if hi < lo:
            raise OmpScheduleError(f"invalid iteration range [{lo}, {hi})")


class StaticSchedule(SpreadSchedule):
    """``spread_schedule(static[, chunk_size])`` — the paper's schedule.

    Without an explicit chunk size, the range is split evenly into one
    chunk per device (ceiling division), which is what the Somier
    implementations compute by hand (``chunk = buffer_size/num_devices``).
    """

    kind = "static"

    def __init__(self, chunk_size: Optional[int] = None):
        if chunk_size is not None and chunk_size < 1:
            raise OmpScheduleError(
                f"spread_schedule(static, {chunk_size}): chunk size must "
                "be >= 1")
        self.chunk_size = chunk_size
        # Schedules are immutable once built; precomputing keeps the
        # signature tuple off the per-call cache-key path.
        self._signature = ("static", chunk_size)

    @property
    def signature(self):
        return self._signature

    def chunks(self, lo: int, hi: int, devices: Sequence[int]) -> List[Chunk]:
        self._check_range(lo, hi)
        if hi == lo:
            return []
        size = self.chunk_size
        if size is None:
            size = math.ceil((hi - lo) / len(devices))
        out: List[Chunk] = []
        pos = lo
        index = 0
        while pos < hi:
            stop = min(pos + size, hi)
            out.append(Chunk(index=index, interval=Interval(pos, stop),
                             device=devices[index % len(devices)]))
            pos = stop
            index += 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StaticSchedule(chunk_size={self.chunk_size})"


class HierarchicalStaticSchedule(SpreadSchedule):
    """Two-level static split for cluster topologies (nodes, then GPUs).

    ``groups`` lists each node's devices (in clause order).  The chunking
    is the literal nesting of two paper-static spreads: a top-level
    ``spread_schedule(static)`` deals the iteration range across the
    *nodes* (even ceiling split, one share per node), and a nested static
    split deals each node's share across that node's devices
    (``chunk_size`` applies to the nested level; default one even chunk
    per device).  Chunk indices are global and sequential in (node,
    position) order, so the failover routing formula
    (``index % survivors``) scatters a lost node's whole share across the
    surviving nodes' devices.

    Deterministic and cacheable: the signature covers the group structure
    and the nested chunk size.
    """

    kind = "hier"

    def __init__(self, groups: Sequence[Sequence[int]],
                 chunk_size: Optional[int] = None):
        groups = [list(g) for g in groups]
        if not groups or any(not g for g in groups):
            raise OmpScheduleError(
                "hierarchical schedule needs at least one non-empty "
                "device group per node")
        seen = set()
        for g in groups:
            for d in g:
                if d in seen:
                    raise OmpScheduleError(
                        f"hierarchical schedule: device {d} in two groups")
                seen.add(d)
        if chunk_size is not None and chunk_size < 1:
            raise OmpScheduleError(
                f"hierarchical schedule: chunk size must be >= 1, "
                f"got {chunk_size}")
        self.groups = groups
        self.chunk_size = chunk_size
        self._signature = ("hier", tuple(tuple(g) for g in groups),
                           chunk_size)

    @property
    def signature(self):
        return self._signature

    def chunks(self, lo: int, hi: int, devices: Sequence[int]) -> List[Chunk]:
        self._check_range(lo, hi)
        if hi == lo:
            return []
        declared = sorted(d for g in self.groups for d in g)
        if declared != sorted(devices):
            raise OmpScheduleError(
                "hierarchical schedule groups must cover exactly the "
                f"devices clause (groups={declared}, "
                f"clause={sorted(devices)})")
        node_share = math.ceil((hi - lo) / len(self.groups))
        out: List[Chunk] = []
        index = 0
        pos = lo
        for group in self.groups:
            if pos >= hi:
                break
            stop = min(pos + node_share, hi)
            inner = self.chunk_size
            if inner is None:
                inner = math.ceil((stop - pos) / len(group))
            p = pos
            i = 0
            while p < stop:
                s = min(p + inner, stop)
                out.append(Chunk(index=index, interval=Interval(p, s),
                                 device=group[i % len(group)]))
                p = s
                i += 1
                index += 1
            pos = stop
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HierarchicalStaticSchedule(groups={self.groups}, "
                f"chunk_size={self.chunk_size})")


class IrregularStaticSchedule(SpreadSchedule):
    """Static schedule with explicit, possibly unequal chunk sizes (§IX).

    ``sizes`` are consumed in order and cycled if the range is longer; the
    last chunk is truncated to the range end.  Chunks are still dealt
    round-robin in devices-list order.
    """

    kind = "static_irregular"
    is_extension = True

    def __init__(self, sizes: Sequence[int]):
        sizes = list(sizes)
        if not sizes or any(s < 1 for s in sizes):
            raise OmpScheduleError(
                "irregular static schedule needs positive chunk sizes")
        self.sizes = sizes
        self._signature = ("static_irregular", tuple(sizes))

    @property
    def signature(self):
        return self._signature

    def chunks(self, lo: int, hi: int, devices: Sequence[int]) -> List[Chunk]:
        self._check_range(lo, hi)
        out: List[Chunk] = []
        pos = lo
        index = 0
        while pos < hi:
            size = self.sizes[index % len(self.sizes)]
            stop = min(pos + size, hi)
            out.append(Chunk(index=index, interval=Interval(pos, stop),
                             device=devices[index % len(devices)]))
            pos = stop
            index += 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"IrregularStaticSchedule(sizes={self.sizes})"


class DynamicSchedule(SpreadSchedule):
    """``spread_schedule(dynamic, chunk_size)`` (§IX future work).

    Chunks carry no device assignment; the executable spread directive runs
    one worker per device pulling chunks first-come-first-served, which is
    the load-balancing behaviour the paper calls for on imbalanced nodes.
    Only supported by executable directives (data distribution must be
    reproducible, hence static).
    """

    kind = "dynamic"
    is_extension = True

    def __init__(self, chunk_size: int):
        if chunk_size < 1:
            raise OmpScheduleError(
                f"spread_schedule(dynamic, {chunk_size}): chunk size must "
                "be >= 1")
        self.chunk_size = chunk_size

    def chunks(self, lo: int, hi: int, devices: Sequence[int]) -> List[Chunk]:
        self._check_range(lo, hi)
        out: List[Chunk] = []
        pos = lo
        index = 0
        while pos < hi:
            stop = min(pos + self.chunk_size, hi)
            out.append(Chunk(index=index, interval=Interval(pos, stop),
                             device=None))
            pos = stop
            index += 1
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DynamicSchedule(chunk_size={self.chunk_size})"


def spread_schedule(kind: str, chunk_size=None) -> SpreadSchedule:
    """Factory mirroring the clause syntax: ``spread_schedule("static", 4)``.

    ``static`` is the only kind the paper implements; ``static_irregular``
    (pass a list of sizes) and ``dynamic`` are the §IX extensions and
    require the runtime to enable them (see
    :class:`repro.spread.extensions.Extensions`).
    """
    if kind == "static":
        if isinstance(chunk_size, (list, tuple)):
            raise OmpScheduleError(
                "spread_schedule(static, ...): chunk size must be an int; "
                "use kind='static_irregular' for a size list")
        return StaticSchedule(chunk_size)
    if kind == "static_irregular":
        if not isinstance(chunk_size, (list, tuple)):
            raise OmpScheduleError(
                "spread_schedule(static_irregular, ...): pass a list of sizes")
        return IrregularStaticSchedule(chunk_size)
    if kind == "dynamic":
        if chunk_size is None:
            raise OmpScheduleError(
                "spread_schedule(dynamic, ...): chunk size required")
        return DynamicSchedule(int(chunk_size))
    raise OmpScheduleError(
        f"unknown spread_schedule kind {kind!r} (the directive supports "
        "only 'static'; 'static_irregular' and 'dynamic' are extensions)")
