"""Launch-plan caching for the spread directives (directive replay).

The Somier programs re-execute structurally identical spread directives
every timestep: same kernel, same bounds, same devices clause, same
schedule, same symbolic map/depend sections.  Lowering one of those
directives — device-clause validation, chunking, per-chunk section
concretization, name formatting — is pure host-side work whose result
depends only on those inputs, so it can be computed once and replayed.
This is the simulated analogue of what production offload runtimes do for
repeated launches (JACC caches kernel/launch state across invocations; the
LLVM/OpenMP GPU runtime memoizes the launch path).

:class:`SpreadPlanCache` maps a structural *key* of the directive to a
:class:`SpreadPlan` holding the fully-lowered, immutable launch recipe:
the chunk list and, per chunk, the concretized map intervals, the
concretized depend skeleton and the task-name strings.  The directive
layer replays a plan by rebuilding only the per-call pieces (the operation
generators), so a replayed directive issues bit-identical work to a cold
one — same ops, same order, same names, same virtual-time trace.

Cache keys and invalidation
---------------------------

Keys are structural tuples built from:

* the kernel (by identity — :class:`~repro.device.kernel.KernelSpec`
  carries an unhashable scalars dict, so the plan anchors a strong
  reference and the key uses ``id()``),
* the iteration range / data range and the devices clause,
* the schedule signature (kind + chunk sizes; the dynamic schedule has no
  signature and is never cached — its chunk→device assignment is decided
  at execution time),
* a map signature: per clause ``(map_type, var, var extent, section)``
  where variables compare by identity and sections structurally
  (:class:`~repro.spread.sections.SpreadExpr` hashes structurally),
* a depend signature of the same shape.

Entries almost never go stale because every input that could change the
lowering is part of the key.  Rebinding a name to a *new*
:class:`~repro.openmp.mapping.Var` (or changing an array's extent)
changes the key, so the old entry is simply never hit again.  The one
event that does invalidate is *device loss* (fault injection):
:meth:`SpreadPlanCache.invalidate_device` drops every plan that routed
chunks to the lost device.  This is hygiene more than correctness —
failover re-routes chunks at launch time regardless of what the plan
says — but it keeps the cache from pinning plans that will never replay
verbatim again and keeps its entry count honest.
Anything the key cannot prove stable (an unhashable section, a dynamic
schedule) falls back to the uncached slow path.  ``plan_cache=False`` on
the runtime (CLI ``--no-plan-cache``) disables lookup and store entirely.

Extension gates and per-call semantic checks (reduction×nowait conflicts)
stay *outside* the cached region: a cache hit only skips work whose
outcome is fully determined by the key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.tool import PLAN_CACHE


@dataclass(frozen=True)
class ChunkPlan:
    """The lowered launch recipe of one chunk of a spread directive.

    ``maps`` holds ``(MapClause, Interval)`` pairs (concretized for this
    chunk), ``deps`` the concretized dependence skeleton, ``name`` the task
    name and ``label`` the op label.  ``extra`` carries directive-specific
    precomputation (``target update spread`` keeps its concrete to/from
    section lists here).
    """

    chunk: Any
    maps: Tuple[Any, ...]
    deps: Tuple[Any, ...]
    name: str
    label: str = ""
    extra: Any = None


@dataclass(frozen=True)
class SpreadPlan:
    """One directive's fully-lowered plan: validated devices + chunk plans.

    ``anchors`` pins objects whose ``id()`` participates in the cache key
    (the kernel), so a key can never alias a recycled id.
    """

    devices: Tuple[int, ...]
    chunks: Tuple[Any, ...]
    chunk_plans: Tuple[ChunkPlan, ...]
    anchors: Tuple[Any, ...] = ()


class SpreadPlanCache:
    """Keyed store of :class:`SpreadPlan` objects with hit/miss counters."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        # key -> [plan, macro_state] cell.  The second slot carries the
        # compiled macro-op program (repro.spread.macro): None until a
        # compile is attempted, the program on success, or a ``False``
        # sentinel for a plan that was tried and found uncompilable so the
        # attempt is not repeated on every hit.  Keeping it in the same
        # cell means a hit pays ONE key hash for both lookups and an
        # evicted plan can never leave a stale program behind.
        self._plans: Dict[Any, List[Any]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.macro_compiles = 0
        self.macro_replays = 0

    def lookup(self, key: Any) -> Optional[List[Any]]:
        """The ``[plan, macro_state]`` cell for *key*, or None (a miss).

        ``key=None`` marks an uncacheable directive and is never counted.
        """
        if key is None or not self.enabled:
            return None
        try:
            cell = self._plans.get(key)
        except TypeError:  # unhashable key component: uncacheable
            return None
        if cell is None:
            self.misses += 1
        else:
            self.hits += 1
        return cell

    def get(self, key: Any) -> Optional[Any]:
        """The cached plan for *key*, or None (counting a miss)."""
        cell = self.lookup(key)
        return cell[0] if cell is not None else None

    def store(self, key: Any, plan: Any) -> None:
        if key is None or not self.enabled:
            return
        try:
            self._plans[key] = [plan, None]
        except TypeError:  # unhashable key component: skip silently
            pass

    def get_macro(self, key: Any) -> Any:
        """Compiled macro program for *key* (or the False sentinel)."""
        cell = self._plans.get(key)
        return cell[1] if cell is not None else None

    def store_macro(self, key: Any, prog: Any) -> None:
        if key is None or not self.enabled:
            return
        cell = self._plans.get(key)
        if cell is not None:
            cell[1] = prog

    def clear(self) -> None:
        self._plans.clear()

    def invalidate_device(self, device_id: int) -> int:
        """Drop every cached plan that routes work to *device_id*.

        Called by :meth:`OpenMPRuntime.mark_device_lost`.  Returns the
        number of cache entries dropped.
        """
        return self.invalidate_devices((device_id,))

    def invalidate_node(self, device_ids: Sequence[int]) -> int:
        """Drop every cached plan routing work to a lost *node* (all of
        its devices at once).  One pass over the cache, however many
        devices the node hosted — called by
        :meth:`OpenMPRuntime.mark_node_lost`."""
        return self.invalidate_devices(device_ids)

    def invalidate_devices(self, device_ids: Sequence[int]) -> int:
        """Drop every cached plan that routes work to any of *device_ids*.

        Returns the number of cache entries dropped.  Some entries hold
        a tuple of plans (a spread data region caches its enter and exit
        plans together); such an entry is dropped if *any* member
        references one of the devices.

        Each evicted ``[plan, macro_state]`` cell is also *poisoned in
        place* — plan slot cleared, macro slot set to the ``False``
        ("never compile") sentinel.  The plan and its macro program live
        or die together: a holder that grabbed the cell before the loss
        (a directive mid-flight, a handle adopting replay state) can
        neither replay the stale plan nor compile-and-adopt a macro
        program derived from it after the signature is re-lowered into a
        fresh cell.
        """
        ids = frozenset(device_ids)

        def _references(plan: Any) -> bool:
            if isinstance(plan, tuple):
                return any(_references(p) for p in plan)
            if ids.intersection(getattr(plan, "devices", ())):
                return True
            return any(getattr(c, "device", None) in ids
                       for c in getattr(plan, "chunks", ()))

        stale = [key for key, cell in self._plans.items()
                 if _references(cell[0])]
        for key in stale:
            cell = self._plans.pop(key)
            cell[0] = None
            cell[1] = False
        self.invalidations += len(stale)
        return len(stale)

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._plans),
                "invalidations": self.invalidations,
                "macro_compiles": self.macro_compiles,
                "macro_replays": self.macro_replays,
                "macro_entries": sum(1 for c in self._plans.values()
                                     if c[1] is not None
                                     and c[1] is not False)}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<SpreadPlanCache enabled={self.enabled} "
                f"entries={len(self._plans)} hits={self.hits} "
                f"misses={self.misses}>")


# ---------------------------------------------------------------------------
# key builders
# ---------------------------------------------------------------------------

def _section_key(section: Any) -> Any:
    if section is None:
        return None
    if isinstance(section, (tuple, list)):
        return tuple(section)
    return section


def maps_signature(maps: Sequence[Any]) -> Tuple[Any, ...]:
    """Structural signature of a map-clause list.

    The variable's extent rides along so growing/shrinking the underlying
    array (were a Var ever rebuilt around one) changes the signature.

    The ``_section_key`` normalization is inlined: this runs on *every*
    directive call, hit or miss, and the extra call frame per clause was a
    measurable share of the hit path (BENCH_wallclock's end_to_end_speedup
    was below 1.0 before it was flattened).  The map type rides as its
    value string, not the enum member — ``enum.Enum.__hash__`` is a
    Python-level call, and the key is hashed on every directive call.
    """
    out = []
    for c in maps:
        s = c.section
        if type(s) is list:
            s = tuple(s)
        out.append((c.map_type._value_, c.var, c.var.extent, s))
    return tuple(out)


def deps_signature(deps: Sequence[Any]) -> Tuple[Any, ...]:
    if not deps:
        return ()
    out = []
    for d in deps:
        s = d.section
        if type(s) is list:
            s = tuple(s)
        out.append((d.kind._value_, d.var, d.var.extent, s))
    return tuple(out)


def sections_signature(pairs: Sequence[Tuple[Any, Any]]) -> Tuple[Any, ...]:
    """Signature of ``(var, section)`` pairs (``target update spread``)."""
    out = []
    for var, section in pairs:
        if type(section) is list:
            section = tuple(section)
        out.append((var, var.extent, section))
    return tuple(out)


def exec_key(kernel: Any, lo: int, hi: int, devices: Sequence[int],
             sched_signature: Any, maps: Sequence[Any],
             depends: Sequence[Any]) -> Optional[Any]:
    """Cache key of an executable spread directive, or None if uncacheable
    (dynamic schedule, malformed bounds).

    Bounds are *not* forced to Python int: NumPy integers hash and compare
    equal to the equivalent Python int, so mixed-type callers still land on
    the same entry and the hit path skips two conversions per call.
    """
    if sched_signature is None:
        return None
    try:
        return ("exec", id(kernel), lo, hi, tuple(devices),
                sched_signature, maps_signature(maps),
                deps_signature(depends) if depends else ())
    except (TypeError, ValueError, AttributeError):
        return None


def data_key(kind: str, devices: Sequence[int], range_: Tuple[int, int],
             chunk_size: Optional[int], maps: Sequence[Any],
             depends: Sequence[Any] = ()) -> Optional[Any]:
    """Cache key of a spread data directive (enter/exit/data region)."""
    try:
        return ("data", kind, tuple(devices), range_[0], range_[1],
                chunk_size, maps_signature(maps), deps_signature(depends))
    except (TypeError, ValueError, IndexError, AttributeError):
        return None


def update_key(devices: Sequence[int], range_: Tuple[int, int],
               chunk_size: Optional[int], to: Sequence[Tuple[Any, Any]],
               from_: Sequence[Tuple[Any, Any]],
               depends: Sequence[Any] = ()) -> Optional[Any]:
    """Cache key of ``target update spread``."""
    try:
        return ("update", tuple(devices), range_[0], range_[1],
                chunk_size, sections_signature(to),
                sections_signature(from_), deps_signature(depends))
    except (TypeError, ValueError, IndexError, AttributeError):
        return None


def note_plan_cache(rt, kind: str, key: Any, hit: bool) -> None:
    """Fire the ``plan_cache`` tool callback for a cacheable directive."""
    if key is None:
        return
    tools = rt.tools
    if tools:
        tools.dispatch(PLAN_CACHE, kind=kind, hit=hit, time=rt.sim.now)
