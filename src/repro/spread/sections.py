"""The special identifiers ``omp_spread_start`` and ``omp_spread_size``.

The paper introduces two variable identifiers usable inside map (and depend)
array sections: at execution time, ``omp_spread_start`` is the start of the
current chunk and ``omp_spread_size`` its length, so halo mappings are
"simple arithmetic with these delimiters" (Section III-B.1)::

    map(to:   A[omp_spread_start - 1 : omp_spread_size + 2])
    map(from: B[omp_spread_start     : omp_spread_size    ])

In Python the identifiers are singleton symbolic expressions supporting
``+``, ``-`` and ``*`` with ints; :meth:`SpreadExpr.evaluate` substitutes the
per-chunk values.
"""

from __future__ import annotations

from typing import Union

Number = Union[int, "SpreadExpr"]


class SpreadExpr:
    """An affine expression ``a*omp_spread_start + b*omp_spread_size + c``."""

    __slots__ = ("start_coeff", "size_coeff", "const", "_hash")

    def __init__(self, start_coeff: int = 0, size_coeff: int = 0,
                 const: int = 0):
        self.start_coeff = int(start_coeff)
        self.size_coeff = int(size_coeff)
        self.const = int(const)
        # Expressions are immutable; the hash is computed once because
        # plan-cache signatures hash every section on every directive call.
        self._hash = hash((self.start_coeff, self.size_coeff, self.const))

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, spread_start: int, spread_size: int) -> int:
        """Substitute the chunk's start/size."""
        return (self.start_coeff * int(spread_start)
                + self.size_coeff * int(spread_size)
                + self.const)

    @property
    def is_constant(self) -> bool:
        return self.start_coeff == 0 and self.size_coeff == 0

    # -- arithmetic -----------------------------------------------------------

    @staticmethod
    def _coerce(other: Number) -> "SpreadExpr":
        if isinstance(other, SpreadExpr):
            return other
        if isinstance(other, int):
            return SpreadExpr(const=other)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: Number):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return SpreadExpr(self.start_coeff + o.start_coeff,
                          self.size_coeff + o.size_coeff,
                          self.const + o.const)

    __radd__ = __add__

    def __sub__(self, other: Number):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return SpreadExpr(self.start_coeff - o.start_coeff,
                          self.size_coeff - o.size_coeff,
                          self.const - o.const)

    def __rsub__(self, other: Number):
        o = self._coerce(other)
        if o is NotImplemented:
            return NotImplemented
        return o - self

    def __neg__(self) -> "SpreadExpr":
        return SpreadExpr(-self.start_coeff, -self.size_coeff, -self.const)

    def __mul__(self, other: int):
        if not isinstance(other, int):
            return NotImplemented
        return SpreadExpr(self.start_coeff * other, self.size_coeff * other,
                          self.const * other)

    __rmul__ = __mul__

    # -- comparison / repr ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = SpreadExpr(const=other)
        if not isinstance(other, SpreadExpr):
            return NotImplemented
        return (self.start_coeff == other.start_coeff
                and self.size_coeff == other.size_coeff
                and self.const == other.const)

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        if self.start_coeff:
            coeff = "" if self.start_coeff == 1 else f"{self.start_coeff}*"
            parts.append(f"{coeff}omp_spread_start")
        if self.size_coeff:
            coeff = "" if self.size_coeff == 1 else f"{self.size_coeff}*"
            parts.append(f"{coeff}omp_spread_size")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts).replace("+ -", "- ")


#: The start of the current chunk, at execution time.
omp_spread_start = SpreadExpr(start_coeff=1)

#: The size of the current chunk, at execution time.
omp_spread_size = SpreadExpr(size_coeff=1)


def spread_section(start_delta: int = 0, size_delta: int = 0):
    """The common halo pattern as a section pair.

    ``spread_section(-1, +2)`` is
    ``(omp_spread_start - 1, omp_spread_size + 2)`` — the symmetric one-row
    halo of the paper's listings.
    """
    return (omp_spread_start + start_delta, omp_spread_size + size_delta)
