"""Feature gates for the paper's §IX future-work features.

The paper is explicit about what its implementation does *not* support yet:

* ``depend`` on ``target enter/exit data spread`` / ``target update spread``
  (Listings 6-7 prose; Listing 13 sketches the planned syntax);
* non-``static`` spread schedules (irregular chunk sizes, dynamic);
* a cross-device ``reduction`` clause.

We implement all three, but gate them behind :class:`Extensions` so the
default runtime behaves exactly like the paper's prototype (attempting an
unsupported feature raises :class:`~repro.util.errors.OmpSemaError`, the
analogue of the compiler diagnostic), while the ablation benchmarks enable
them explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import OmpSemaError


@dataclass
class Extensions:
    """Which future-work features are enabled on a runtime.

    Attach to a runtime via :func:`enable` (or set
    ``rt.spread_extensions`` directly).
    """

    #: depend clauses on spread data directives (Listing 13).
    data_depend: bool = False
    #: irregular-size static and dynamic spread schedules (§IX).
    schedules: bool = False
    #: cross-device reduction clause (§IX).
    reduction: bool = False


def get_extensions(rt) -> Extensions:
    """The runtime's extension gates (default: everything off)."""
    ext = getattr(rt, "spread_extensions", None)
    if ext is None:
        ext = Extensions()
        rt.spread_extensions = ext
    return ext


def enable(rt, **flags: bool) -> Extensions:
    """Enable extension features on a runtime: ``enable(rt, data_depend=True)``."""
    ext = get_extensions(rt)
    for name, value in flags.items():
        if not hasattr(ext, name):
            raise OmpSemaError(f"unknown spread extension {name!r}")
        setattr(ext, name, bool(value))
    return ext


def require(rt, flag: str, what: str) -> None:
    """Raise the paper-faithful diagnostic unless *flag* is enabled."""
    ext = get_extensions(rt)
    if not getattr(ext, flag):
        raise OmpSemaError(
            f"{what} is not supported yet (paper §IX future work); enable "
            f"it explicitly with repro.spread.extensions.enable(rt, "
            f"{flag}=True)")
