"""Profiling reports: per-directive and per-device breakdowns.

The text renderer mimics ``LIBOMPTARGET_PROFILE``'s end-of-run summary
(aligned tables of region timers and data-movement counters); ``to_json``
emits the machine-readable equivalent that CLI ``--metrics-json`` and the
bench harness persist.  :class:`Profiler` is the convenience bundle the CLI
uses: one :class:`~repro.obs.builtin.MetricsTool` plus one
:class:`~repro.obs.spans.SpanRecorder`, registered together.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.builtin import MetricsTool
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.util.format import format_bytes, format_table

PROFILE_SCHEMA = "repro-profile-1"


def _label(inst: Any, key: str) -> Optional[str]:
    return dict(inst.labels).get(key)


class ProfileReport:
    """Aggregated view over one run's metrics (and optionally its spans)."""

    def __init__(self, registry: MetricsRegistry,
                 spans: Optional[SpanRecorder] = None,
                 makespan: float = 0.0,
                 critpath: Optional[Dict[str, Any]] = None):
        self.registry = registry
        self.spans = spans
        self.makespan = makespan
        #: compact critical-path headline
        #: (:meth:`repro.obs.critpath.CritPathAnalysis.headline`), when the
        #: run was analyzed
        self.critpath = critpath

    # -- per-directive ----------------------------------------------------------

    def directive_kinds(self) -> List[str]:
        kinds = {_label(t, "kind") for t in self.registry.timers("directive_time")}
        kinds |= {_label(c, "kind") for c in self.registry.counters("directives")}
        return sorted(k for k in kinds if k is not None)

    def per_directive_rows(self) -> List[Dict[str, Any]]:
        reg = self.registry
        # The encountering-task window (directive_time) is ~0 for nowait
        # directives; finalized spans cover the fanned-out chunk tasks too,
        # so prefer them when a SpanRecorder rode along.
        span_durs: Dict[str, List[float]] = {}
        if self.spans is not None:
            for span in self.spans.directive_spans():
                span_durs.setdefault(span.name, []).append(span.duration)
        rows = []
        for kind in self.directive_kinds():
            durs = span_durs.get(kind)
            if durs:
                total, peak = sum(durs), max(durs)
                count = len(durs)
            else:
                timer = reg.timer("directive_time", kind=kind)
                total, peak = timer.sum, timer.max
                count = int(reg.counter_value("directives", kind=kind))
            rows.append({
                "kind": kind,
                "count": count,
                "total_s": total,
                "mean_s": total / count if count else 0.0,
                "max_s": peak,
                "chunks": int(reg.counter_value("spread_chunks", kind=kind)),
            })
        return rows

    # -- per-device -------------------------------------------------------------

    def device_ids(self) -> List[int]:
        devs = set()
        for c in self.registry.counters():
            d = _label(c, "device")
            if d is not None:
                devs.add(int(d))
        for g in self.registry.gauges("device_memory_bytes"):
            d = _label(g, "device")
            if d is not None:
                devs.add(int(d))
        return sorted(devs)

    def per_device_rows(self) -> List[Dict[str, Any]]:
        reg = self.registry
        rows = []
        for d in self.device_ids():
            kernel_timer = reg.timer("kernel_time", device=d)
            rows.append({
                "device": d,
                "h2d_bytes": reg.counter_value("bytes_moved", device=d,
                                               dir="h2d"),
                "d2h_bytes": reg.counter_value("bytes_moved", device=d,
                                               dir="d2h"),
                "memcpys": int(reg.sum_counter("memcpy_calls", device=d)),
                "kernels": int(reg.counter_value("kernels_launched",
                                                 device=d)),
                "kernel_s": kernel_timer.sum,
                "queue_busy_s": reg.counter_value("queue_busy_seconds",
                                                  device=d),
                "link_busy_s": reg.counter_value("link_busy_seconds",
                                                 device=d),
                "present_hits": int(reg.counter_value("present_hits",
                                                      device=d)),
                "present_misses": int(reg.counter_value("present_misses",
                                                        device=d)),
                "memo_hits": int(reg.counter_value("present_memo_hits",
                                                   device=d)),
                "submits": int(reg.counter_value("target_submits",
                                                 device=d)),
            })
        return rows

    # -- parallel host backend ---------------------------------------------------

    def executor_summary(self) -> Optional[Dict[str, Any]]:
        """Wave/op counters of the parallel host backend, or None if the
        run never produced an ``executor_epoch`` event (serial backend)."""
        reg = self.registry
        epochs = int(reg.counter_value("executor_epochs"))
        if epochs == 0:
            return None
        util_gauges = reg.gauges("executor_worker_utilization")
        return {
            "epochs": epochs,
            "parallel_ops": int(reg.counter_value("executor_parallel_ops")),
            "serial_ops": int(reg.counter_value("executor_serial_ops")),
            "inline_fallbacks": int(
                reg.counter_value("executor_inline_fallbacks")),
            "busy_s": reg.counter_value("executor_busy_seconds"),
            "span_s": reg.counter_value("executor_span_seconds"),
            "worker_utilization": (util_gauges[0].value
                                   if util_gauges else 0.0),
        }

    # -- event engine -------------------------------------------------------------

    def engine_summary(self) -> Optional[Dict[str, Any]]:
        """Calendar-queue dispatch counters, or None when the run's engine
        stats were never ingested (see ``MetricsTool.observe_engine``)."""
        reg = self.registry
        dispatches = int(reg.counter_value("engine_dispatches"))
        if dispatches == 0:
            return None
        scheduled = int(reg.counter_value("engine_events_scheduled"))
        dispatched = int(reg.counter_value("engine_events_dispatched"))
        gauges = reg.gauges("engine_mean_batch")
        return {
            "events_scheduled": scheduled,
            "dispatches": dispatches,
            "events_dispatched": dispatched,
            "mean_batch": gauges[0].value if gauges else (
                dispatched / dispatches),
            "fused_segments": int(
                reg.counter_value("engine_fused_segments")),
            "timeouts_created": int(
                reg.counter_value("engine_timeouts_created")),
            "timeouts_reused": int(
                reg.counter_value("engine_timeouts_reused")),
            "calls_created": int(reg.counter_value("engine_calls_created")),
            "calls_reused": int(reg.counter_value("engine_calls_reused")),
        }

    # -- fault injection ----------------------------------------------------------

    def fault_summary(self) -> Optional[Dict[str, Any]]:
        """Resilience counters, or None if the run saw no fault activity."""
        reg = self.registry
        injected = int(reg.sum_counter("faults_injected"))
        retries = int(reg.sum_counter("fault_retries"))
        lost = int(reg.counter_value("devices_lost"))
        failovers = int(reg.sum_counter("fault_failovers"))
        giveups = int(reg.sum_counter("fault_giveups"))
        if not (injected or retries or lost or failovers or giveups):
            return None
        return {
            "injected": injected,
            "retries": retries,
            "backoff_s": reg.counter_value("fault_backoff_seconds"),
            "giveups": giveups,
            "devices_lost": lost,
            "failovers": failovers,
        }

    # -- race sanitizer -----------------------------------------------------------

    def analysis_summary(self) -> Optional[Dict[str, Any]]:
        """Race-sanitizer counters, or None if the sanitizer was off."""
        reg = self.registry
        ops = int(reg.sum_counter("analysis_ops_recorded"))
        if ops == 0:
            return None
        return {
            "ops_recorded": ops,
            "access_checks": int(reg.counter_value("analysis_access_checks")),
            "races": int(reg.counter_value("analysis_races")),
        }

    # -- rendering --------------------------------------------------------------

    def render_text(self) -> str:
        parts = []
        drows = self.per_directive_rows()
        if drows:
            parts.append("Per-directive profile")
            parts.append(format_table(
                ["directive", "count", "total_s", "mean_s", "max_s",
                 "chunks"],
                [(r["kind"], r["count"], f"{r['total_s']:.6f}",
                  f"{r['mean_s']:.6f}", f"{r['max_s']:.6f}", r["chunks"])
                 for r in drows]))
        vrows = self.per_device_rows()
        if vrows:
            parts.append("")
            parts.append("Per-device profile")
            parts.append(format_table(
                ["device", "h2d", "d2h", "memcpys", "kernels", "kernel_s",
                 "queue_s", "link_s", "hits", "misses", "memo", "submits"],
                [(f"gpu{r['device']}", format_bytes(r["h2d_bytes"]),
                  format_bytes(r["d2h_bytes"]), r["memcpys"], r["kernels"],
                  f"{r['kernel_s']:.6f}", f"{r['queue_busy_s']:.6f}",
                  f"{r['link_busy_s']:.6f}", r["present_hits"],
                  r["present_misses"], r["memo_hits"], r["submits"])
                 for r in vrows]))
        reg = self.registry
        totals = [
            f"makespan: {self.makespan:.6f}s (virtual)",
            f"tasks spawned: {int(reg.counter_value('tasks_spawned')):d}"
            f" (deferred: {int(reg.counter_value('tasks_deferred')):d})",
            f"dependence edges: {int(reg.counter_value('dependence_edges')):d}",
            f"plan cache: {int(reg.sum_counter('plan_cache_hits')):d} hits,"
            f" {int(reg.sum_counter('plan_cache_misses')):d} misses",
        ]
        ex = self.executor_summary()
        if ex is not None:
            totals.append(
                f"executor: {ex['epochs']:d} epochs, "
                f"{ex['parallel_ops']:d} parallel ops, "
                f"{ex['serial_ops']:d} serial ops "
                f"({ex['inline_fallbacks']:d} inline fallbacks), "
                f"utilization {ex['worker_utilization']:.0%}")
        eng = self.engine_summary()
        if eng is not None:
            totals.append(
                f"engine: {eng['events_dispatched']:d} events over "
                f"{eng['dispatches']:d} dispatches "
                f"(mean batch {eng['mean_batch']:.2f}), "
                f"{eng['fused_segments']:d} fused segments, "
                f"timeout reuse {eng['timeouts_reused']:d}/"
                f"{eng['timeouts_reused'] + eng['timeouts_created']:d}")
        fa = self.fault_summary()
        if fa is not None:
            totals.append(
                f"faults: {fa['injected']:d} injected, "
                f"{fa['retries']:d} retries "
                f"({fa['backoff_s'] * 1e6:.0f}us backoff), "
                f"{fa['giveups']:d} giveups, "
                f"{fa['devices_lost']:d} devices lost, "
                f"{fa['failovers']:d} failovers")
        an = self.analysis_summary()
        if an is not None:
            totals.append(
                f"sanitizer: {an['ops_recorded']:d} ops recorded, "
                f"{an['access_checks']:d} access checks, "
                f"{an['races']:d} race(s)")
        cp = self.critpath
        if cp is not None:
            totals.append(
                f"critical path: {cp['work_s']:.6f}s busy over "
                f"{cp['events']:d} events, slackness "
                f"{cp['slackness']:.2f}x")
        parts.append("")
        parts.extend(totals)
        return "\n".join(parts) if (drows or vrows) else (
            "\n".join(["(no profile data recorded)"] + totals))

    def to_json(self, indent: Optional[int] = None) -> str:
        """LIBOMPTARGET_PROFILE-style JSON; round-trips ``json.loads``."""
        payload = {
            "schema": PROFILE_SCHEMA,
            "makespan_s": self.makespan,
            "directives": self.per_directive_rows(),
            "devices": self.per_device_rows(),
            "counters": self.registry.snapshot(),
        }
        ex = self.executor_summary()
        if ex is not None:
            payload["executor"] = ex
        eng = self.engine_summary()
        if eng is not None:
            payload["engine"] = eng
        fa = self.fault_summary()
        if fa is not None:
            payload["faults"] = fa
        an = self.analysis_summary()
        if an is not None:
            payload["analysis"] = an
        if self.critpath is not None:
            payload["critpath"] = self.critpath
        if self.spans is not None:
            self.spans.finalize()
            payload["spans"] = {
                "directives": len(self.spans.directives),
                "tasks": len(self.spans.tasks),
                "ops": len(self.spans.ops),
            }
        return json.dumps(payload, indent=indent, sort_keys=False)


class Profiler:
    """The CLI/bench bundle: metrics tool + span recorder, one register call.

    ::

        prof = Profiler()
        result = run_somier(..., tools=prof.tools)
        print(prof.report(result.elapsed).render_text())
        path.write_text(prof.chrome_trace(result.runtime.trace))
    """

    def __init__(self) -> None:
        self.metrics = MetricsTool()
        self.spans = SpanRecorder()

    @property
    def tools(self) -> Tuple[MetricsTool, SpanRecorder]:
        return (self.metrics, self.spans)

    @property
    def registry(self) -> MetricsRegistry:
        return self.metrics.registry

    def report(self, makespan: float = 0.0,
               critpath: Optional[Dict[str, Any]] = None) -> ProfileReport:
        return ProfileReport(self.registry, spans=self.spans,
                             makespan=makespan, critpath=critpath)

    def chrome_trace(self, trace: Any,
                     extra_records: Sequence[dict] = ()) -> str:
        """The run's Chrome trace with nested spans merged in.

        ``extra_records`` are appended after the span records — the CLI
        passes the analyzer's causal flow arrows here.
        """
        return trace.to_chrome_trace(
            extra_records=self.spans.to_chrome_records()
            + list(extra_records))
