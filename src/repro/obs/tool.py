"""The OMPT-style tool interface: typed callback points + guarded dispatch.

Real OpenMP offload stacks expose runtime events to tools through OMPT
(``ompt_set_callback`` + a fixed set of callback points fired by
libomp/libomptarget at well-defined semantic points).  This module is the
reproduction's analogue: every layer of the directive stack —
:mod:`repro.openmp` (runtime, tasks, depend, dataenv, exec_ops),
:mod:`repro.spread` and :mod:`repro.device` — fires a callback point at the
same place libomptarget would fire the corresponding OMPT event.

Zero-cost contract (matching OMPT's "no tool, no overhead" design):

* every dispatch site is guarded with ``if tools:`` — with no tool
  registered the registry is falsy and the runtime does not even build the
  payload dict;
* callbacks are plain synchronous Python: they never touch the simulator,
  so registering a tool can neither advance virtual time nor reorder
  events.  Traces and results are bit-identical with and without tools.

Callback points (→ closest OMPT event):

=======================  ==================================================
``directive_begin/end``   ``ompt_callback_target`` (begin/end endpoints)
``target_submit``         ``ompt_callback_target_submit``
``data_op``               ``ompt_callback_target_data_op`` (alloc, h2d,
                          d2h, delete, plus present-table traffic)
``task_create``           ``ompt_callback_task_create``
``task_schedule``         ``ompt_callback_task_schedule``
``task_complete``         task completion (schedule with prior-task state)
``dependence_resolved``   ``ompt_callback_task_dependence``
``kernel_launch``         submission half of ``target_submit`` on-device
``kernel_complete``       device-side completion record
``device_init``           ``ompt_callback_device_initialize``
``plan_cache``            spread launch-plan cache hit/miss (no OMPT
                          equivalent; analogous to a runtime's launch-state
                          memoization trace records)
``executor_epoch``        one executed wave of the parallel host backend
                          (no OMPT equivalent; fired synchronously by
                          :mod:`repro.sim.executor`, never touches the
                          simulator)
``fault_event``           fault-injection lifecycle (no OMPT equivalent):
                          ``kind`` ∈ inject / retry / giveup /
                          device_lost / failover, fired by the device
                          layer, the retry wrapper and the spread
                          failover path
``sanitizer_op``          the race sanitizer recorded one op footprint
                          (closest analogue: an Archer/TSan access
                          annotation); payload carries the access and
                          check counts
``sanitizer_race``        the race sanitizer reported one pair of
                          conflicting unordered accesses
                          (``ompt_callback_error`` is the nearest OMPT
                          event)
=======================  ==================================================
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

# -- callback points ----------------------------------------------------------

DIRECTIVE_BEGIN = "directive_begin"
DIRECTIVE_END = "directive_end"
TARGET_SUBMIT = "target_submit"
DATA_OP = "data_op"
TASK_CREATE = "task_create"
TASK_SCHEDULE = "task_schedule"
TASK_COMPLETE = "task_complete"
DEPENDENCE_RESOLVED = "dependence_resolved"
KERNEL_LAUNCH = "kernel_launch"
KERNEL_COMPLETE = "kernel_complete"
DEVICE_INIT = "device_init"
PLAN_CACHE = "plan_cache"
# Kept in sync with repro.sim.executor.EXECUTOR_EPOCH (the executor sits
# below the obs layer and must not import it).
EXECUTOR_EPOCH = "executor_epoch"
FAULT_EVENT = "fault_event"
SANITIZER_OP = "sanitizer_op"
SANITIZER_RACE = "sanitizer_race"

CALLBACK_POINTS = (
    DIRECTIVE_BEGIN,
    DIRECTIVE_END,
    TARGET_SUBMIT,
    DATA_OP,
    TASK_CREATE,
    TASK_SCHEDULE,
    TASK_COMPLETE,
    DEPENDENCE_RESOLVED,
    KERNEL_LAUNCH,
    KERNEL_COMPLETE,
    DEVICE_INIT,
    PLAN_CACHE,
    EXECUTOR_EPOCH,
    FAULT_EVENT,
    SANITIZER_OP,
    SANITIZER_RACE,
)

#: kinds carried by ``fault_event`` payloads (the ``kind=`` field)
FAULT_EVENT_KINDS = ("inject", "retry", "giveup", "device_lost", "failover")

#: kinds carried by ``data_op`` payloads (the ``op=`` field)
DATA_OP_KINDS = ("alloc", "free", "h2d", "d2h", "delete", "release",
                 "present_hit", "present_miss", "present_memo_hit")


class Tool:
    """Base class for tools: override ``on_<point>`` for points of interest.

    A tool method receives the dispatch payload as keyword arguments, e.g.::

        class MyTool(Tool):
            def on_data_op(self, *, op, device, time, **kw):
                ...

    Accept ``**kw`` — payloads may grow fields over time, like OMPT record
    layouts do.
    """

    def callbacks(self) -> Dict[str, Callable[..., None]]:
        """The ``point -> bound method`` mapping this tool implements."""
        out: Dict[str, Callable[..., None]] = {}
        for point in CALLBACK_POINTS:
            fn = getattr(self, f"on_{point}", None)
            if callable(fn):
                out[point] = fn
        return out


class ToolRegistry:
    """Registered callbacks per point, plus id allocation for dispatchers.

    The registry is **falsy while empty** — dispatch sites are written as::

        tools = rt.tools
        if tools:
            tools.dispatch(DATA_OP, op="h2d", device=..., time=...)

    so an un-instrumented run pays one attribute load and one truthiness
    check per site, nothing else (the OMPT null-tool fast path).
    """

    def __init__(self, runtime: Optional[object] = None):
        self._runtime = runtime
        self._callbacks: Dict[str, List[Callable[..., None]]] = {
            point: [] for point in CALLBACK_POINTS}
        self._count = 0
        self._tools: List[Tool] = []
        self._next_directive_id = 0
        self._next_task_id = 0
        self.dispatch_count = 0

    def __bool__(self) -> bool:
        return self._count > 0

    # -- registration -----------------------------------------------------------

    def register(self, tool: Tool) -> Tool:
        """Attach *tool*; replays ``device_init`` for existing devices.

        OMPT tools that attach after device initialization still receive
        one ``device_initialize`` per device; we reproduce that so a tool
        never observes transfers to a device it was not introduced to.
        """
        cbs = tool.callbacks()
        if not cbs:
            raise ValueError(
                f"{type(tool).__name__} implements no on_<point> callback")
        for point, fn in cbs.items():
            self._callbacks[point].append(fn)
            self._count += 1
        self._tools.append(tool)
        rt = self._runtime
        if rt is not None:
            for dev in rt.devices:
                self.dispatch(DEVICE_INIT, device=dev.device_id,
                              name=dev.spec.name,
                              memory_bytes=dev.spec.memory_bytes,
                              num_sms=dev.spec.num_sms,
                              time=rt.sim.now)
        return tool

    def unregister(self, tool: Tool) -> None:
        if tool not in self._tools:
            raise ValueError(f"{type(tool).__name__} is not registered")
        self._tools.remove(tool)
        for point, fn in tool.callbacks().items():
            self._callbacks[point].remove(fn)
            self._count -= 1

    def set_callback(self, point: str, fn: Callable[..., None]) -> None:
        """Raw function registration (the ``ompt_set_callback`` analogue)."""
        if point not in self._callbacks:
            raise ValueError(f"unknown callback point {point!r}")
        self._callbacks[point].append(fn)
        self._count += 1

    @property
    def tools(self) -> List[Tool]:
        return list(self._tools)

    # -- dispatch ---------------------------------------------------------------

    def dispatch(self, point: str, **payload: Any) -> None:
        """Fire every callback registered at *point*, in registration order."""
        cbs = self._callbacks.get(point)
        if cbs is None:
            raise ValueError(f"unknown callback point {point!r}")
        self.dispatch_count += 1
        for fn in cbs:
            fn(**payload)

    # -- id allocation ------------------------------------------------------------

    def directive_begin(self, kind: str, did: Optional[int] = None,
                        **payload: Any) -> int:
        """Fire ``directive_begin``, allocating an id if none is given.

        Directive ids are sequential in program order, hence deterministic
        run to run; chunk tasks carry their directive's id so tools can
        reconstruct directive → chunk → op causality.  The runtime now
        allocates ids itself (:meth:`OpenMPRuntime.next_directive_id`, so
        trace provenance exists even without tools) and passes them in;
        the local counter remains for direct registry users.
        """
        if did is None:
            self._next_directive_id += 1
            did = self._next_directive_id
        self.dispatch(DIRECTIVE_BEGIN, directive=did, kind=kind, **payload)
        return did

    def directive_end(self, directive: int, **payload: Any) -> None:
        self.dispatch(DIRECTIVE_END, directive=directive, **payload)

    def next_task_id(self) -> int:
        self._next_task_id += 1
        return self._next_task_id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<ToolRegistry tools={len(self._tools)} "
                f"callbacks={self._count} dispatched={self.dispatch_count}>")
