"""The built-in metrics tool: callback points → metrics registry.

:class:`MetricsTool` is the ``LIBOMPTARGET_PROFILE`` analogue — a tool
shipped with the runtime that turns the OMPT-style callback stream into the
counter catalogue the profiling reports render:

=================================  ==========================================
metric                              populated from
=================================  ==========================================
``bytes_moved{device,dir}``         ``data_op`` (h2d/d2h)
``memcpy_calls{device,dir}``        ``data_op`` (h2d/d2h)
``memcpy_time{device,dir}``         ``data_op`` durations (timer)
``queue_busy_seconds{device}``      copy + kernel durations
``link_busy_seconds{device}``       wire portion of transfers
``present_hits/misses{device}``     ``data_op`` (present_hit/present_miss)
``refcount_churn{device}``          present-table ref up/downs past creation
``device_allocs/deletes{device}``   ``data_op`` (alloc/delete)
``kernels_launched{device}``        ``kernel_launch``
``kernel_time{device}``             ``kernel_complete`` (timer)
``tasks_spawned`` / ``_deferred``   ``task_create`` (deferred = non-empty
                                    wait set at submission)
``tasks_in_flight`` (gauge)         ``task_schedule`` / ``task_complete``
``dependence_edges``                ``dependence_resolved``
``directives{kind}``                ``directive_begin``
``directive_time{kind}``            begin→end virtual window (timer)
``spread_chunks{kind}``             ``directive_end`` chunk counts
``target_submits{device}``          ``target_submit``
``devices_initialized``             ``device_init``
``plan_cache_hits/misses{kind}``    ``plan_cache`` (spread launch-plan
                                    replay vs full lowering)
``present_memo_hits{device}``       ``data_op`` (present_memo_hit: last-hit
                                    present-table lookups)
``executor_epochs``                 ``executor_epoch`` (executed waves of
                                    the parallel host backend)
``executor_parallel_ops``           ``executor_epoch`` (ops run on the pool)
``executor_serial_ops``             ``executor_epoch`` (ops run inline)
``executor_inline_fallbacks``       ``executor_epoch`` (ops forced inline by
                                    aliasing/unprovable accesses)
``executor_busy/span_seconds``      ``executor_epoch`` (wall-clock work vs
                                    wave span)
``executor_worker_utilization``     gauge: busy / (span × workers), over
                                    parallel waves
``faults_injected{device,fault}``   ``fault_event`` (kind=inject)
``fault_retries{device}``           ``fault_event`` (kind=retry)
``fault_backoff_seconds``           ``fault_event`` (retry backoff charged
                                    to virtual time)
``fault_giveups{device}``           ``fault_event`` (kind=giveup: retry
                                    budget exhausted)
``devices_lost``                    ``fault_event`` (kind=device_lost)
``fault_failovers{device}``         ``fault_event`` (kind=failover: chunk
                                    re-routed to a survivor)
``analysis_ops_recorded{device}``   ``sanitizer_op`` (race-sanitizer
                                    footprints recorded)
``analysis_access_checks``          ``sanitizer_op`` (frontier comparisons)
``analysis_races``                  ``sanitizer_race`` (conflicting
                                    unordered access pairs reported)
=================================  ==========================================
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tool import Tool


class MetricsTool(Tool):
    """Populates a :class:`MetricsRegistry` from the callback stream."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._directive_begin_t: Dict[int, float] = {}
        self._directive_kind: Dict[int, str] = {}
        self._exec_parallel_busy = 0.0
        self._exec_parallel_capacity = 0.0

    # -- devices ----------------------------------------------------------------

    def on_device_init(self, *, device: int, memory_bytes: float = 0.0,
                       **kw: Any) -> None:
        reg = self.registry
        reg.counter("devices_initialized").inc()
        reg.gauge("device_memory_bytes", device=device).set(memory_bytes)

    # -- directives -------------------------------------------------------------

    def on_directive_begin(self, *, directive: int, kind: str,
                           time: float = 0.0, **kw: Any) -> None:
        self.registry.counter("directives", kind=kind).inc()
        self._directive_begin_t[directive] = time
        self._directive_kind[directive] = kind

    def on_directive_end(self, *, directive: int, time: float = 0.0,
                         chunks: Optional[int] = None, **kw: Any) -> None:
        kind = self._directive_kind.pop(directive, "unknown")
        begin = self._directive_begin_t.pop(directive, time)
        self.registry.timer("directive_time", kind=kind).observe(
            max(0.0, time - begin))
        if chunks:
            self.registry.counter("spread_chunks", kind=kind).inc(chunks)

    def on_target_submit(self, *, device: int, **kw: Any) -> None:
        self.registry.counter("target_submits", device=device).inc()

    # -- data operations ----------------------------------------------------------

    def on_data_op(self, *, op: str, device: int, bytes: float = 0.0,
                   start: Optional[float] = None,
                   end: Optional[float] = None,
                   wire_start: Optional[float] = None,
                   wire_end: Optional[float] = None, **kw: Any) -> None:
        reg = self.registry
        if op in ("h2d", "d2h"):
            reg.counter("bytes_moved", device=device, dir=op).inc(bytes)
            reg.counter("memcpy_calls", device=device, dir=op).inc()
            if start is not None and end is not None:
                reg.timer("memcpy_time", device=device, dir=op).observe(
                    end - start)
                reg.counter("queue_busy_seconds", device=device).inc(
                    end - start)
            if wire_start is not None and wire_end is not None:
                reg.counter("link_busy_seconds", device=device).inc(
                    wire_end - wire_start)
        elif op == "alloc":
            reg.counter("device_allocs", device=device).inc()
            reg.counter("alloc_bytes", device=device).inc(bytes)
        elif op == "free":
            reg.counter("device_frees", device=device).inc()
        elif op == "present_hit":
            reg.counter("present_hits", device=device).inc()
            reg.counter("refcount_churn", device=device).inc()
        elif op == "present_miss":
            reg.counter("present_misses", device=device).inc()
        elif op == "release":
            reg.counter("refcount_churn", device=device).inc()
        elif op == "delete":
            reg.counter("present_deletes", device=device).inc()
            reg.counter("refcount_churn", device=device).inc()
        elif op == "present_memo_hit":
            reg.counter("present_memo_hits", device=device).inc()

    # -- plan cache ---------------------------------------------------------------

    def on_plan_cache(self, *, hit: bool, kind: str = "unknown",
                      **kw: Any) -> None:
        name = "plan_cache_hits" if hit else "plan_cache_misses"
        self.registry.counter(name, kind=kind).inc()

    # -- tasks ------------------------------------------------------------------

    def on_task_create(self, *, deferred: bool = False, **kw: Any) -> None:
        self.registry.counter("tasks_spawned").inc()
        if deferred:
            self.registry.counter("tasks_deferred").inc()

    def on_task_schedule(self, **kw: Any) -> None:
        self.registry.gauge("tasks_in_flight").add(1)

    def on_task_complete(self, **kw: Any) -> None:
        self.registry.gauge("tasks_in_flight").add(-1)

    def on_dependence_resolved(self, *, edges: int = 0, **kw: Any) -> None:
        self.registry.counter("dependence_edges").inc(edges)

    # -- kernels ------------------------------------------------------------------

    def on_kernel_launch(self, *, device: int, **kw: Any) -> None:
        self.registry.counter("kernels_launched", device=device).inc()

    def on_kernel_complete(self, *, device: int, start: float, end: float,
                           **kw: Any) -> None:
        self.registry.timer("kernel_time", device=device).observe(end - start)
        self.registry.counter("queue_busy_seconds", device=device).inc(
            end - start)

    # -- parallel host backend ----------------------------------------------------

    def on_executor_epoch(self, *, ops: int, mode: str, workers: int,
                          busy_s: float = 0.0, span_s: float = 0.0,
                          inline: int = 0, **kw: Any) -> None:
        reg = self.registry
        reg.counter("executor_epochs").inc()
        if mode == "parallel":
            reg.counter("executor_parallel_ops").inc(ops)
            self._exec_parallel_busy += busy_s
            self._exec_parallel_capacity += span_s * workers
            if self._exec_parallel_capacity > 0:
                reg.gauge("executor_worker_utilization").set(
                    self._exec_parallel_busy / self._exec_parallel_capacity)
        else:
            reg.counter("executor_serial_ops").inc(ops)
        if inline:
            reg.counter("executor_inline_fallbacks").inc(inline)
        reg.counter("executor_busy_seconds").inc(busy_s)
        reg.counter("executor_span_seconds").inc(span_s)

    # -- fault injection ----------------------------------------------------------

    def on_fault_event(self, *, kind: str, device: int = -1,
                       fault: str = "", delay: float = 0.0,
                       **kw: Any) -> None:
        reg = self.registry
        if kind == "inject":
            reg.counter("faults_injected", device=device, fault=fault).inc()
        elif kind == "retry":
            reg.counter("fault_retries", device=device).inc()
            reg.counter("fault_backoff_seconds").inc(delay)
        elif kind == "giveup":
            reg.counter("fault_giveups", device=device).inc()
        elif kind == "device_lost":
            reg.counter("devices_lost").inc()
        elif kind == "failover":
            reg.counter("fault_failovers", device=device).inc()

    # -- race sanitizer -----------------------------------------------------------

    def on_sanitizer_op(self, *, device: Optional[int] = None,
                        checks: int = 0, **kw: Any) -> None:
        reg = self.registry
        reg.counter("analysis_ops_recorded",
                    device=-1 if device is None else device).inc()
        reg.counter("analysis_access_checks").inc(checks)

    def on_sanitizer_race(self, **kw: Any) -> None:
        self.registry.counter("analysis_races").inc()

    # -- event engine -------------------------------------------------------------

    def observe_engine(self, stats: Dict[str, Any]) -> None:
        """Ingest one run's :meth:`repro.sim.engine.Simulator.engine_stats`.

        The engine has no callback stream of its own (counting per event
        would be the hot path observing itself); the driver scrapes the
        counters once at end of run and hands them here.
        """
        reg = self.registry
        for key in ("events_scheduled", "dispatches", "events_dispatched",
                    "fused_segments", "timeouts_created", "timeouts_reused",
                    "calls_created", "calls_reused"):
            reg.counter(f"engine_{key}").inc(stats.get(key, 0))
        reg.gauge("engine_mean_batch").set(stats.get("mean_batch", 0.0))

    # -- convenience --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot()

    def render_text(self) -> str:
        return self.registry.render_text()
