"""Nested span recording: directive → chunk task → device op causality.

The paper reads causality off nsys timelines; chrome://tracing / Perfetto
can show the same thing if the exporter emits *nested* intervals.  The
:class:`SpanRecorder` tool reconstructs three levels from the callback
stream:

* **directive spans** — one per ``directive_begin``/``directive_end`` pair;
  a directive's interval is extended to cover its chunk tasks, so a
  ``nowait`` directive still encloses the work it fanned out (Perfetto's
  async-span convention);
* **task spans** — one per chunk/device-op task
  (``task_schedule`` → ``task_complete``), parented to the directive that
  submitted it;
* **op spans** — kernels and transfers (``kernel_complete`` / ``data_op``),
  parented to the innermost task span on the same device whose interval
  contains them (a task's ops execute strictly inside its
  schedule→complete window, so containment is exact).

``to_chrome_records()`` renders the three levels as extra lanes of the
existing Chrome-trace export; ``finalize()`` resolves parents and is
idempotent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.tool import Tool

DIRECTIVE = "directive"
TASK = "task"
OP = "op"


@dataclass
class Span:
    """One node of the causality forest."""

    span_id: int
    kind: str                      # directive | task | op
    name: str
    start: float
    end: float
    parent_id: Optional[int] = None
    device: Optional[int] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, other: "Span") -> bool:
        return self.start <= other.start and other.end <= self.end


class SpanRecorder(Tool):
    """Builds the directive→chunk→op span forest from callbacks."""

    def __init__(self) -> None:
        self._next_span_id = 0
        self.directives: Dict[int, Span] = {}   # directive id -> span
        self.tasks: Dict[int, Span] = {}        # task id -> span
        self.ops: List[Span] = []
        self._task_directive: Dict[int, Optional[int]] = {}
        self._task_device: Dict[int, Optional[int]] = {}
        self._task_name: Dict[int, str] = {}
        self._finalized = False

    def _new_span(self, kind: str, name: str, start: float, end: float,
                  **kw: Any) -> Span:
        self._next_span_id += 1
        return Span(span_id=self._next_span_id, kind=kind, name=name,
                    start=start, end=end, **kw)

    # -- callbacks --------------------------------------------------------------

    def on_directive_begin(self, *, directive: int, kind: str,
                           time: float = 0.0, **kw: Any) -> None:
        span = self._new_span(DIRECTIVE, kind, time, time,
                              meta={k: v for k, v in kw.items()
                                    if k in ("name", "devices", "device",
                                             "lo", "hi")})
        self.directives[directive] = span
        self._finalized = False

    def on_directive_end(self, *, directive: int, time: float = 0.0,
                         **kw: Any) -> None:
        span = self.directives.get(directive)
        if span is not None:
            span.end = max(span.end, time)
            span.meta.update({k: v for k, v in kw.items() if k == "chunks"})

    def on_task_create(self, *, task: Optional[int] = None,
                       directive: Optional[int] = None,
                       device: Optional[int] = None,
                       name: str = "", **kw: Any) -> None:
        if task is None:
            return
        self._task_directive[task] = directive
        self._task_device[task] = device
        self._task_name[task] = name

    def on_task_schedule(self, *, task: Optional[int] = None,
                         time: float = 0.0, name: str = "",
                         **kw: Any) -> None:
        if task is None:
            return
        span = self._new_span(
            TASK, name or self._task_name.get(task, "task"), time, time,
            device=self._task_device.get(task))
        did = self._task_directive.get(task)
        if did is not None and did in self.directives:
            span.parent_id = self.directives[did].span_id
        self.tasks[task] = span
        self._finalized = False

    def on_task_complete(self, *, task: Optional[int] = None,
                         time: float = 0.0, **kw: Any) -> None:
        if task is None:
            return
        span = self.tasks.get(task)
        if span is not None:
            span.end = max(span.end, time)

    def on_kernel_complete(self, *, device: int, name: str = "kernel",
                           start: float = 0.0, end: float = 0.0,
                           **kw: Any) -> None:
        self.ops.append(self._new_span(OP, name, start, end, device=device,
                                       meta={"category": "kernel"}))
        self._finalized = False

    def on_data_op(self, *, op: str, device: int, name: str = "",
                   start: Optional[float] = None,
                   end: Optional[float] = None,
                   bytes: float = 0.0, **kw: Any) -> None:
        if op not in ("h2d", "d2h") or start is None or end is None:
            return  # alloc/present traffic is instantaneous metadata
        self.ops.append(self._new_span(
            OP, name or op, start, end, device=device,
            meta={"category": op, "bytes": bytes}))
        self._finalized = False

    # -- resolution -------------------------------------------------------------

    def finalize(self) -> None:
        """Resolve op parents and extend directive intervals (idempotent)."""
        if self._finalized:
            return
        by_span_id: Dict[int, Span] = {}
        for span in self.directives.values():
            span.children = []
            by_span_id[span.span_id] = span
        # task -> directive linkage; directives cover their tasks
        task_spans = sorted(self.tasks.values(), key=lambda s: s.span_id)
        for span in task_spans:
            span.children = []
            by_span_id[span.span_id] = span
            parent = by_span_id.get(span.parent_id)
            if parent is not None:
                parent.children.append(span)
                parent.start = min(parent.start, span.start)
                parent.end = max(parent.end, span.end)
        # op -> innermost containing task span on the same device
        for op in self.ops:
            best: Optional[Span] = None
            for cand in task_spans:
                if cand.device != op.device:
                    continue
                if cand.start <= op.start and op.end <= cand.end:
                    if best is None or cand.start >= best.start:
                        best = cand
            if best is not None:
                op.parent_id = best.span_id
                best.children.append(op)
            else:
                op.parent_id = None
        self._finalized = True

    def directive_spans(self, kind: Optional[str] = None) -> List[Span]:
        self.finalize()
        out = sorted(self.directives.values(), key=lambda s: s.span_id)
        if kind is not None:
            out = [s for s in out if s.name == kind]
        return out

    # -- export -----------------------------------------------------------------

    #: pid used for span lanes in the merged Chrome trace (the raw device
    #: lanes stay on pid 0)
    CHROME_PID = 1

    def to_chrome_records(self) -> List[dict]:
        """Chrome-trace records for the span forest (M metadata + X spans).

        Lanes: tid 0 = directives; tid 100+d = chunk tasks of device *d*;
        tid 200+d = ops of device *d*.  Each X record's args carry
        ``span_id``/``parent`` so causality survives even without visual
        nesting.
        """
        self.finalize()
        records: List[dict] = [{
            "name": "process_name", "ph": "M", "pid": self.CHROME_PID,
            "tid": 0, "args": {"name": "directive spans"},
        }]
        lanes = {0: "directives"}

        def emit(span: Span, tid: int) -> None:
            records.append({
                "name": span.name,
                "cat": f"span:{span.kind}",
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": self.CHROME_PID,
                "tid": tid,
                "args": dict(span.meta, span_id=span.span_id,
                             parent=span.parent_id),
            })

        for span in sorted(self.directives.values(),
                           key=lambda s: s.span_id):
            emit(span, 0)
        for span in sorted(self.tasks.values(), key=lambda s: s.span_id):
            tid = 100 + (span.device if span.device is not None else 99)
            lanes.setdefault(tid, f"chunks@gpu{span.device}"
                             if span.device is not None else "chunks@host")
            emit(span, tid)
        for span in self.ops:
            tid = 200 + (span.device if span.device is not None else 99)
            lanes.setdefault(tid, f"ops@gpu{span.device}"
                             if span.device is not None else "ops@host")
            emit(span, tid)
        for tid, name in sorted(lanes.items()):
            records.append({"name": "thread_name", "ph": "M",
                            "pid": self.CHROME_PID, "tid": tid,
                            "args": {"name": name}})
            records.append({"name": "thread_sort_index", "ph": "M",
                            "pid": self.CHROME_PID, "tid": tid,
                            "args": {"sort_index": tid}})
        return records

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<SpanRecorder directives={len(self.directives)} "
                f"tasks={len(self.tasks)} ops={len(self.ops)}>")
