"""Critical-path analysis with bottleneck attribution and what-if projection.

The paper reads its nsys timelines by hand to explain *why* a multi-device
run takes as long as it does (Figs. 3-4).  This module automates that:

* :class:`CausalRecorder` — attached to the simulator, it records *why every
  device op started when it did*: dependency edges (the op's process was
  ordered after predecessor ops via joins and spawn inheritance) and
  contention edges (a FIFO resource grant handed the op the slot another op
  just released).
* :class:`CritPathAnalysis` — over the edge-annotated trace it extracts the
  critical path (the causal chain that tiles ``[0, makespan]``), attributes
  every device-lane second into compute / transfer / retry / contention /
  idle buckets, ranks stragglers per spread directive, computes overlap
  efficiency per directive, and replays the causal DAG with modified costs
  ("what if transfers were free?") to bound speedups per bottleneck class.

Recording is strictly opt-in (``OpenMPRuntime(analyze=True)`` or
``REPRO_ANALYZE=1``); results and traces are bit-identical either way — the
recorder only *observes*.  The what-if replay relaxes cross-lane link and
staging contention, so its projections are upper bounds on the achievable
speedup (exact for the zero-transfer scenario, where no wire time remains
to contend).
"""

from __future__ import annotations

import json
from heapq import nlargest
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.trace import (D2H, H2D, KERNEL, Trace, _intersect,
                             _merge_intervals, _total)

#: JSON schema tag of :meth:`CritPathAnalysis.report` payloads
CRITPATH_SCHEMA = "repro-critpath-1"

_TRANSFERS = (H2D, D2H)


def _issue(ev) -> float:
    return ev.meta.get("issue", ev.start)


def _ready(ev) -> float:
    return ev.meta.get("ready", ev.start)


def _done(ev) -> float:
    return ev.meta.get("done", ev.end)


def _attempt(ev) -> int:
    return ev.meta.get("attempt", 0)


def _subtract(xs: Sequence[Tuple[float, float]],
              ys: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Disjoint sorted intervals *xs* minus disjoint sorted intervals *ys*."""
    out: List[Tuple[float, float]] = []
    for a, b in xs:
        cur = a
        for ya, yb in ys:
            if yb <= cur or ya >= b:
                continue
            if ya > cur:
                out.append((cur, ya))
            cur = max(cur, yb)
            if cur >= b:
                break
        if cur < b:
            out.append((cur, b))
    return out


class CausalRecorder:
    """Records the causal edges between device ops as a run executes.

    Ops get sequential ids at :meth:`op_begin`; each op's *dependency
    predecessors* are the issuing process's causal frontier (``cp_heads``)
    at that moment.  Frontiers propagate by spawn inheritance
    (:class:`~repro.sim.engine.Process`) and merge at joins via the
    simulator's ``cp_hook``.  FIFO resources report *contention edges*
    (released slot → granted waiter) through :meth:`contention`.
    """

    #: frontier cap: joins keep the most recent ops; the max-completion
    #: predecessor the critical path needs is always among them
    MAX_HEADS = 64

    def __init__(self) -> None:
        self.ops = 0
        #: op id -> its dependency predecessors (the issuing process's
        #: frontier tuple, stored by reference — frontiers are shared by
        #: inheritance, so this costs one pointer per op, not one edge)
        self.op_deps: Dict[int, Tuple[int, ...]] = {}
        #: (blocked_op, blocker_op, resource): blocked was granted the
        #: slot blocker released
        self.res_edges: List[Tuple[int, int, str]] = []
        #: op id -> trace event index (bound at op_end)
        self.op_event: Dict[int, int] = {}

    @property
    def dep_edge_count(self) -> int:
        return sum(len(v) for v in self.op_deps.values())

    def install(self, sim) -> None:
        sim.recorder = self
        sim.cp_hook = self.on_join

    # -- device-op protocol ------------------------------------------------

    def op_begin(self, proc) -> int:
        self.ops += 1
        op = self.ops
        if proc is not None and proc.cp_heads:
            self.op_deps[op] = proc.cp_heads
        return op

    def op_end(self, op: int, proc, event_index: Optional[int]) -> None:
        if event_index is not None:
            self.op_event[op] = event_index
        if proc is not None:
            proc.cp_heads = (op,)

    def contention(self, blocked_op: int, blocker_op: Optional[int],
                   resource: str) -> None:
        if blocker_op is not None:
            self.res_edges.append((blocked_op, blocker_op, resource))

    # -- join hook ---------------------------------------------------------

    def on_join(self, proc, heads) -> None:
        """Merge a delivered event's causal frontier into the receiver's.

        The engine calls this only for non-empty frontiers (a one-attribute
        check), so plain timeouts and resource grants cost nothing extra.
        """
        cur = proc.cp_heads
        if not cur:
            # Frontier adoption: share the tuple, dedup join lists.
            proc.cp_heads = (heads if type(heads) is tuple
                             else tuple(set(heads)))
            return
        if heads is cur:
            return
        merged = set(cur)
        merged.update(heads)
        if len(merged) == len(cur):
            return
        if len(merged) > self.MAX_HEADS:
            proc.cp_heads = tuple(nlargest(self.MAX_HEADS, merged))
        else:
            proc.cp_heads = tuple(merged)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<CausalRecorder ops={self.ops} dep={self.dep_edge_count} "
                f"res={len(self.res_edges)}>")


class CritPathAnalysis:
    """Causality-aware analysis of one recorded run."""

    def __init__(self, trace: Trace, recorder: CausalRecorder,
                 directive_info: Optional[Dict[int, dict]] = None,
                 num_devices: Optional[int] = None):
        self.trace = trace
        self.recorder = recorder
        self.directive_info = directive_info or {}
        self.num_devices = num_devices
        self.events = trace.events
        self.makespan = trace.makespan()
        #: event index -> sorted dependency predecessor event indices
        self.dep_preds: Dict[int, List[int]] = {}
        #: event index -> [(predecessor event index, resource name)]
        self.res_preds: Dict[int, List[Tuple[int, str]]] = {}
        op_event = recorder.op_event
        # Frontier tuples are shared across ops by inheritance (see
        # CausalRecorder.op_deps), so expansion memoizes on tuple identity;
        # the tuples stay alive in op_deps, keeping ids stable.  An op's own
        # id can never appear in its frontier (ids are assigned at begin,
        # frontiers hold completed ops), so the lists need no per-dst copy.
        expanded: Dict[int, List[int]] = {}
        for dst_op, heads in recorder.op_deps.items():
            dst = op_event.get(dst_op)
            if dst is None:
                continue
            preds = expanded.get(id(heads))
            if preds is None:
                preds = sorted({op_event[h] for h in heads if h in op_event})
                expanded[id(heads)] = preds
            if preds:
                self.dep_preds[dst] = preds
        for blocked_op, blocker_op, rname in recorder.res_edges:
            dst = op_event.get(blocked_op)
            src = op_event.get(blocker_op)
            if dst is None or src is None or src == dst:
                continue
            self.res_preds.setdefault(dst, []).append((src, rname))
        self._cp: Optional[dict] = None
        self._attr: Optional[dict] = None

    # -- critical path -----------------------------------------------------

    def critical_path(self) -> dict:
        """The causal chain ending at the makespan, tiling ``[0, makespan]``.

        Walks backwards from the last-finishing event.  Each hop explains
        the current event's start: a *queue contention* hop when the lane
        slot was granted by another op's release exactly at our start, else
        the event's own prep (``[issue, start]``), its latest-completing
        dependency predecessor, and the host gap between the two.  Segment
        lengths therefore sum to the makespan exactly — the satellite's
        headline invariant.
        """
        if self._cp is not None:
            return self._cp
        events = self.events
        if not events:
            self._cp = {"segments": [], "length_s": 0.0, "work_s": 0.0,
                        "makespan_s": 0.0, "events": 0, "slackness": 1.0,
                        "busy_fraction": 0.0}
            return self._cp
        last = max(range(len(events)), key=lambda i: (events[i].end, i))
        eps = 1e-9 * max(1.0, self.makespan)
        segments: List[dict] = []
        on_path: List[int] = []
        cur: Optional[int] = last
        attach = events[last].end
        seen = set()
        while cur is not None and cur not in seen:
            seen.add(cur)
            ev = events[cur]
            on_path.append(cur)
            segments.append({
                "kind": ev.category, "event": cur, "name": ev.name,
                "lane": ev.lane, "device": ev.device,
                "directive": ev.meta.get("directive"),
                "chunk": ev.meta.get("chunk"),
                "start": ev.start, "end": attach,
            })
            issue, ready = _issue(ev), _ready(ev)
            blocker = None
            if ev.start - ready > eps:
                # The op was ready before it ran: find the lane-slot
                # release that granted it (queued behind same-lane work).
                for pred, rname in self.res_preds.get(cur, ()):
                    if rname == ev.lane and pred < cur and \
                            abs(events[pred].end - ev.start) <= eps:
                        blocker = pred
                        break
            if blocker is not None:
                cur = blocker
                attach = events[blocker].end
                continue
            if ev.start - issue > 0:
                segments.append({
                    "kind": "prep", "event": cur, "name": ev.name,
                    "lane": ev.lane, "device": ev.device,
                    "directive": ev.meta.get("directive"),
                    "chunk": ev.meta.get("chunk"),
                    "start": issue, "end": ev.start,
                })
            preds = [p for p in self.dep_preds.get(cur, ()) if p < cur]
            if preds:
                pred = max(preds, key=lambda q: (_done(events[q]), q))
                gap_start = min(_done(events[pred]), issue)
                if issue - gap_start > 0:
                    segments.append({"kind": "host", "event": None,
                                     "name": "host", "lane": None,
                                     "device": None, "directive": None,
                                     "chunk": None,
                                     "start": gap_start, "end": issue})
                cur = pred
                attach = gap_start
            else:
                if issue > 0:
                    segments.append({"kind": "host", "event": None,
                                     "name": "host", "lane": None,
                                     "device": None, "directive": None,
                                     "chunk": None,
                                     "start": 0.0, "end": issue})
                cur = None
        segments.reverse()
        length = sum(s["end"] - s["start"] for s in segments)
        work = sum(events[i].duration for i in set(on_path))
        busy_fraction = work / self.makespan if self.makespan > 0 else 0.0
        slackness = self.makespan / work if work > 0 else 1.0
        self._cp = {
            "segments": segments,
            "length_s": length,
            "makespan_s": self.makespan,
            "work_s": work,
            "busy_fraction": busy_fraction,
            "slackness": slackness,
            "events": len(on_path),
        }
        return self._cp

    # -- attribution ---------------------------------------------------------

    def attribution(self) -> dict:
        """Every device-lane second bucketed: compute / transfer / retry /
        contention / idle.  Buckets sum to the makespan per lane exactly
        (lane events never overlap: device queues are capacity 1)."""
        if self._attr is not None:
            return self._attr
        rows = []
        for lane, evs in sorted(self.trace.by_lane().items()):
            device = next((e.device for e in evs if e.device is not None),
                          None)
            if device is None:
                continue  # host lane: not device time
            compute_iv, transfer_iv, retry_iv = [], [], []
            busy_iv, stall_iv = [], []
            for e in evs:
                iv = (e.start, e.end)
                busy_iv.append(iv)
                if _attempt(e):
                    retry_iv.append(iv)
                elif e.category == KERNEL:
                    compute_iv.append(iv)
                else:
                    transfer_iv.append(iv)
                stall_iv.append((_issue(e), e.start))
            busy = _merge_intervals(busy_iv)
            busy_s = _total(busy)
            contention = _total(_subtract(_merge_intervals(stall_iv), busy))
            idle = max(0.0, self.makespan - busy_s - contention)
            rows.append({
                "lane": lane, "device": device,
                "compute_s": _total(_merge_intervals(compute_iv)),
                "transfer_s": _total(_merge_intervals(transfer_iv)),
                "retry_s": _total(_merge_intervals(retry_iv)),
                "contention_s": contention,
                "idle_s": idle,
                "busy_s": busy_s,
                "events": len(evs),
            })
        keys = ("compute_s", "transfer_s", "retry_s", "contention_s",
                "idle_s", "busy_s")
        totals = {k: sum(r[k] for r in rows) for k in keys}
        totals["lane_seconds"] = self.makespan * len(rows)
        self._attr = {"lanes": rows, "totals": totals,
                      "makespan_s": self.makespan}
        return self._attr

    # -- stragglers ----------------------------------------------------------

    def stragglers(self, top: Optional[int] = 5) -> List[dict]:
        """Per-spread-directive chunk dispersion, worst offenders first."""
        groups: Dict[int, Dict[int, List]] = {}
        for e in self.events:
            did = e.meta.get("directive")
            chunk = e.meta.get("chunk")
            if did is None or chunk is None or e.category != KERNEL:
                continue
            groups.setdefault(did, {}).setdefault(chunk, []).append(e)
        out = []
        for did, chunks in sorted(groups.items()):
            if len(chunks) < 2:
                continue
            per = []
            for chunk, evs in sorted(chunks.items()):
                per.append({"chunk": chunk,
                            "seconds": sum(e.duration for e in evs),
                            "device": evs[-1].device})
            mean = sum(p["seconds"] for p in per) / len(per)
            worst = max(per, key=lambda p: (p["seconds"], p["chunk"]))
            info = self.directive_info.get(did, {})
            out.append({
                "directive": did,
                "kind": info.get("kind", ""),
                "name": info.get("name", ""),
                "chunks": len(per),
                "mean_s": mean,
                "max_s": worst["seconds"],
                "imbalance": worst["seconds"] / mean if mean > 0 else 1.0,
                "lost_s": worst["seconds"] - mean,
                "slowest_chunk": worst["chunk"],
                "slowest_device": worst["device"],
            })
        out.sort(key=lambda r: (-r["lost_s"], r["directive"]))
        return out[:top] if top else out

    # -- overlap efficiency ---------------------------------------------------

    def overlap(self) -> List[dict]:
        """Per-directive lane-busy efficiency over the directive's window."""
        groups: Dict[int, List] = {}
        for e in self.events:
            did = e.meta.get("directive")
            if did is None:
                continue
            groups.setdefault(did, []).append(e)
        rows = []
        for did, evs in sorted(groups.items()):
            w0 = min(_issue(e) for e in evs)
            w1 = max(_done(e) for e in evs)
            window = w1 - w0
            lanes: Dict[str, List] = {}
            comp: Dict[Any, List] = {}
            xfer: Dict[Any, List] = {}
            for e in evs:
                lanes.setdefault(e.lane, []).append((e.start, e.end))
                tgt = comp if e.category == KERNEL else xfer
                tgt.setdefault(e.device, []).append((e.start, e.end))
            busy = sum(_total(_merge_intervals(iv)) for iv in lanes.values())
            denom = window * len(lanes)
            ct_overlap = sum(
                _total(_intersect(_merge_intervals(comp.get(d, [])),
                                  _merge_intervals(xfer.get(d, []))))
                for d in sorted(set(comp) | set(xfer),
                                key=lambda d: (d is None, d)))
            info = self.directive_info.get(did, {})
            rows.append({
                "directive": did,
                "kind": info.get("kind", ""),
                "name": info.get("name", ""),
                "window_s": window,
                "lanes": len(lanes),
                "busy_s": busy,
                "efficiency": busy / denom if denom > 0 else 0.0,
                "compute_transfer_overlap_s": ct_overlap,
            })
        return rows

    # -- what-if projection ----------------------------------------------------

    def _orig_costs(self, ev) -> Tuple[float, float, float]:
        """``(prep, hold, tail)``: issue→ready host prep, lane occupancy,
        post-lane drain (the D2H tail staging)."""
        return (max(0.0, _ready(ev) - _issue(ev)),
                max(0.0, ev.end - ev.start),
                max(0.0, _done(ev) - ev.end))

    def _qjoin(self, i: int) -> float:
        """Original lane-queue join time: transfers enqueue at issue,
        kernels after their issue latency."""
        ev = self.events[i]
        return _ready(ev) if ev.category == KERNEL else _issue(ev)

    def _replay(self, transform) -> float:
        """Replay the causal DAG with per-event ``(prep, hold, tail)`` from
        *transform*; returns the projected makespan.

        Events replay in lane-queue order; an event issues once its latest
        dependency predecessor completes plus the original host lag, holds
        its (capacity-1) lane from ``max(lane free, ready)``, and completes
        ``tail`` after leaving the lane.  Cross-lane link/staging contention
        is relaxed — projections are upper bounds on fixing the bottleneck.
        """
        events = self.events
        if not events:
            return 0.0
        order = sorted(range(len(events)),
                       key=lambda i: (self._qjoin(i), i))
        new_end = [0.0] * len(events)
        new_done = [0.0] * len(events)
        lane_free: Dict[str, float] = {}
        for i in order:
            ev = events[i]
            preds = self.dep_preds.get(i, ())
            if preds:
                base_orig = max(_done(events[p]) for p in preds)
                base_new = max(new_done[p] for p in preds)
            else:
                base_orig = 0.0
                base_new = 0.0
            lag = max(0.0, _issue(ev) - base_orig)
            prep, hold, tail = transform(ev)
            n_ready = base_new + lag + prep
            n_start = max(n_ready, lane_free.get(ev.lane, 0.0))
            n_end = n_start + hold
            lane_free[ev.lane] = n_end
            new_end[i] = n_end
            new_done[i] = n_end + tail
        return max(new_end)

    def what_if(self) -> dict:
        """Bound the speedup of fixing each bottleneck class."""
        orig = self._orig_costs
        mk = self.makespan
        out: dict = {
            "makespan_s": mk,
            "baseline_replay_s": self._replay(orig),
            "scenarios": {},
        }
        if not self.events:
            return out

        def scenario(name: str, transform, note: str) -> None:
            m = self._replay(transform)
            out["scenarios"][name] = {
                "makespan_s": m,
                "speedup": mk / m if m > 0 else float("inf"),
                "note": note,
            }

        def zero_transfers(ev):
            if ev.category in _TRANSFERS:
                return (0.0, 0.0, 0.0)
            return orig(ev)

        def infinite_link(ev):
            prep, hold, tail = orig(ev)
            if ev.category in _TRANSFERS:
                wire = max(0.0, ev.meta.get("wire_end", ev.end)
                           - ev.meta.get("wire_start", ev.start))
                return (prep, max(0.0, hold - wire), tail)
            return (prep, hold, tail)

        means: Dict[int, float] = {}
        durs: Dict[int, List[float]] = {}
        for e in self.events:
            did = e.meta.get("directive")
            if e.category == KERNEL and did is not None and not _attempt(e):
                durs.setdefault(did, []).append(e.duration)
        for did, ds in durs.items():
            means[did] = sum(ds) / len(ds)

        def perfect_balance(ev):
            prep, hold, tail = orig(ev)
            if ev.category == KERNEL and not _attempt(ev):
                mean = means.get(ev.meta.get("directive"))
                if mean is not None:
                    return (prep, mean, tail)
            return (prep, hold, tail)

        scenario("zero_transfers", zero_transfers,
                 "transfers free: pure compute + host critical path")
        scenario("infinite_link", infinite_link,
                 "wire time zero, per-call latency and staging kept")
        scenario("perfect_balance", perfect_balance,
                 "every chunk kernel takes its directive's mean duration")
        devices = {e.device for e in self.events if e.device is not None}
        nd = len(devices)

        def scaled(factor: float):
            def transform(ev):
                prep, hold, tail = orig(ev)
                return (prep, hold * factor, tail * factor)
            return transform

        if nd > 0:
            scenario("plus_one_device", scaled(nd / (nd + 1)),
                     "analytic: per-chunk work rescaled to one more device")
            if nd > 1:
                scenario("minus_one_device", scaled(nd / (nd - 1)),
                         "analytic: per-chunk work rescaled to one less "
                         "device")
        best = max(out["scenarios"].items(),
                   key=lambda kv: (kv[1]["speedup"], kv[0]),
                   default=None)
        if best is not None:
            out["bottleneck"] = best[0]
            out["bottleneck_speedup"] = best[1]["speedup"]
        return out

    # -- Chrome-trace flow events ----------------------------------------------

    def flow_records(self, include_resource_edges: bool = True) -> List[dict]:
        """Chrome-trace flow events (``ph`` "s"/"f" arrow pairs) along the
        causal edges, matching :meth:`Trace.to_chrome_trace` lane tids.

        One ``dep`` arrow per event — from its *binding* (latest-completing)
        dependency predecessor; the transitive rest would bury the timeline
        in arrows.  ``wait:<resource>`` arrows mark contention grants.
        """
        lane_ids = {lane: i
                    for i, lane in enumerate(sorted(self.trace.by_lane()))}
        events = self.events
        records: List[dict] = []
        flow_id = 0

        def arrow(src: int, dst: int, kind: str) -> None:
            nonlocal flow_id
            flow_id += 1
            s_ev, d_ev = events[src], events[dst]
            records.append({"name": kind, "cat": "causal", "ph": "s",
                            "id": flow_id, "pid": 0,
                            "tid": lane_ids[s_ev.lane],
                            "ts": s_ev.end * 1e6})
            records.append({"name": kind, "cat": "causal", "ph": "f",
                            "bp": "e", "id": flow_id, "pid": 0,
                            "tid": lane_ids[d_ev.lane],
                            "ts": d_ev.start * 1e6})

        for dst, preds in sorted(self.dep_preds.items()):
            src = max(preds, key=lambda q: (_done(events[q]), q))
            arrow(src, dst, "dep")
        if include_resource_edges:
            for dst, entries in sorted(self.res_preds.items()):
                for src, rname in entries:
                    arrow(src, dst, f"wait:{rname}")
        return records

    # -- reports ----------------------------------------------------------------

    def headline(self) -> dict:
        """The compact critical-path block embedded in profile reports."""
        cp = self.critical_path()
        return {k: cp[k] for k in ("makespan_s", "length_s", "work_s",
                                   "busy_fraction", "slackness", "events")}

    def summary_line(self) -> str:
        """The one-line slackness headline ``repro stats`` prints."""
        cp = self.critical_path()
        return (f"parallelism slackness: makespan {cp['makespan_s']:.6f}s / "
                f"critical-path work {cp['work_s']:.6f}s = "
                f"{cp['slackness']:.2f}x "
                f"({cp['busy_fraction'] * 100.0:.1f}% of the path is busy)")

    def report(self, top_segments: int = 12) -> dict:
        """The full JSON payload (schema ``repro-critpath-1``)."""
        cp = self.critical_path()
        segments = sorted(cp["segments"],
                          key=lambda s: -(s["end"] - s["start"]))
        return {
            "schema": CRITPATH_SCHEMA,
            "makespan_s": self.makespan,
            "critical_path": {
                "length_s": cp["length_s"],
                "work_s": cp["work_s"],
                "busy_fraction": cp["busy_fraction"],
                "slackness": cp["slackness"],
                "events": cp["events"],
                "segments": cp["segments"],
                "top_segments": segments[:top_segments],
            },
            "attribution": self.attribution(),
            "stragglers": self.stragglers(),
            "overlap": self.overlap(),
            "what_if": self.what_if(),
            "recorder": {
                "ops": self.recorder.ops,
                "dep_edges": self.recorder.dep_edge_count,
                "res_edges": len(self.recorder.res_edges),
                "bound_events": len(self.recorder.op_event),
            },
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.report(), indent=indent)

    def render_text(self, top: int = 8) -> str:
        """Human-readable report for the ``repro analyze`` command."""
        cp = self.critical_path()
        lines = ["critical path"]
        lines.append(f"  {self.summary_line()}")
        lines.append(f"  length {cp['length_s']:.6f}s == makespan "
                     f"{cp['makespan_s']:.6f}s over {cp['events']} events")
        by_kind: Dict[str, float] = {}
        for seg in cp["segments"]:
            by_kind[seg["kind"]] = (by_kind.get(seg["kind"], 0.0)
                                    + seg["end"] - seg["start"])
        parts = ", ".join(f"{k} {v:.6f}s"
                          for k, v in sorted(by_kind.items(),
                                             key=lambda kv: -kv[1]))
        lines.append(f"  path time by kind: {parts}")
        top_segs = sorted(cp["segments"],
                          key=lambda s: -(s["end"] - s["start"]))[:top]
        for seg in top_segs:
            where = seg["lane"] or "host"
            extra = ""
            if seg["directive"] is not None:
                extra = f" d{seg['directive']}"
                if seg["chunk"] is not None:
                    extra += f"#{seg['chunk']}"
            lines.append(f"    {seg['end'] - seg['start']:.6f}s "
                         f"{seg['kind']:<8} {seg['name']}{extra} @{where}")

        attr = self.attribution()
        lines.append("attribution (per device lane, sums to makespan)")
        header = (f"  {'lane':<10} {'compute':>10} {'transfer':>10} "
                  f"{'retry':>10} {'contention':>10} {'idle':>10}")
        lines.append(header)
        for row in attr["lanes"]:
            lines.append(f"  {row['lane']:<10} {row['compute_s']:>10.6f} "
                         f"{row['transfer_s']:>10.6f} "
                         f"{row['retry_s']:>10.6f} "
                         f"{row['contention_s']:>10.6f} "
                         f"{row['idle_s']:>10.6f}")

        stragglers = self.stragglers(top=top)
        if stragglers:
            lines.append("stragglers (per spread directive)")
            for s in stragglers:
                label = s["name"] or s["kind"] or f"directive {s['directive']}"
                lines.append(
                    f"  d{s['directive']} {label}: chunk {s['slowest_chunk']}"
                    f"@gpu{s['slowest_device']} {s['max_s']:.6f}s vs mean "
                    f"{s['mean_s']:.6f}s (x{s['imbalance']:.2f}, "
                    f"+{s['lost_s']:.6f}s)")

        wi = self.what_if()
        if wi.get("scenarios"):
            lines.append("what-if (upper bounds from causal replay)")
            for name, sc in sorted(wi["scenarios"].items(),
                                   key=lambda kv: -kv[1]["speedup"]):
                marker = " <- bottleneck" if name == wi.get("bottleneck") \
                    else ""
                lines.append(f"  {name:<18} {sc['makespan_s']:.6f}s "
                             f"({sc['speedup']:.2f}x){marker}")
            lines.append(f"  baseline replay {wi['baseline_replay_s']:.6f}s "
                         f"(actual {wi['makespan_s']:.6f}s)")
        return "\n".join(lines)
