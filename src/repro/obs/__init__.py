"""``repro.obs`` — the observability subsystem.

OMPT-style tool callbacks (:mod:`repro.obs.tool`), a label-addressed
metrics registry (:mod:`repro.obs.metrics`), the built-in metrics tool
(:mod:`repro.obs.builtin`), nested span recording
(:mod:`repro.obs.spans`) and the profiling report layer
(:mod:`repro.obs.report`).  See ``docs/observability.md``.
"""

from repro.obs.builtin import MetricsTool
from repro.obs.critpath import (CausalRecorder, CritPathAnalysis,
                                CRITPATH_SCHEMA)
from repro.obs.metrics import (Counter, Gauge, MetricsRegistry, TimerHist,
                               DEFAULT_BUCKETS)
from repro.obs.report import ProfileReport, Profiler, PROFILE_SCHEMA
from repro.obs.spans import Span, SpanRecorder
from repro.obs.tool import (CALLBACK_POINTS, DATA_OP, DATA_OP_KINDS,
                            DEPENDENCE_RESOLVED, DEVICE_INIT,
                            DIRECTIVE_BEGIN, DIRECTIVE_END, KERNEL_COMPLETE,
                            KERNEL_LAUNCH, TARGET_SUBMIT, TASK_COMPLETE,
                            TASK_CREATE, TASK_SCHEDULE, Tool, ToolRegistry)

__all__ = [
    "CALLBACK_POINTS", "CRITPATH_SCHEMA", "DATA_OP", "DATA_OP_KINDS",
    "DEFAULT_BUCKETS",
    "DEPENDENCE_RESOLVED", "DEVICE_INIT", "DIRECTIVE_BEGIN", "DIRECTIVE_END",
    "KERNEL_COMPLETE", "KERNEL_LAUNCH", "PROFILE_SCHEMA", "TARGET_SUBMIT",
    "TASK_COMPLETE", "TASK_CREATE", "TASK_SCHEDULE",
    "CausalRecorder", "Counter", "CritPathAnalysis", "Gauge",
    "MetricsRegistry", "MetricsTool", "ProfileReport",
    "Profiler", "Span", "SpanRecorder", "TimerHist", "Tool", "ToolRegistry",
]
