"""The runtime metrics registry: counters, gauges and timer-histograms.

All instruments are label-addressed (``registry.counter("bytes_moved",
device=0, dir="h2d")``) and live in virtual time: timers observe *simulated*
seconds, so their buckets describe what the modelled hardware did, not what
the Python process did.  ``snapshot()`` produces a plain JSON-able dict —
the payload the bench harness attaches to its result files and the CLI
serializes behind ``--metrics-json``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util.format import format_table

#: Default timer-histogram bucket boundaries, in virtual seconds.  The span
#: from microseconds (per-call latencies) to tens of seconds (full buffers)
#: covers every operation class the cost model produces.
DEFAULT_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _qualified(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing value (floats allowed: byte counts,
    busy-seconds)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount

    @property
    def key(self) -> str:
        return _qualified(self.name, self.labels)


class Gauge:
    """A settable value tracking its high-water mark."""

    __slots__ = ("name", "labels", "value", "max_value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0.0
        self.max_value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.max_value = max(self.max_value, self.value)

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    @property
    def key(self) -> str:
        return _qualified(self.name, self.labels)


class TimerHist:
    """A histogram of virtual-time durations.

    ``buckets`` are upper bounds (seconds); observations fall into the
    first bucket whose bound is >= the duration, with an implicit +inf
    overflow bucket — cumulative counts, Prometheus-style.
    """

    __slots__ = ("name", "labels", "buckets", "bucket_counts", "count",
                 "sum", "min", "max")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or any(b <= 0 for b in bounds):
            raise ValueError("timer buckets must be positive and non-empty")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"timer {self.name}: negative duration")
        self.count += 1
        self.sum += seconds
        self.min = min(self.min, seconds)
        self.max = max(self.max, seconds)
        for i, bound in enumerate(self.buckets):
            if seconds <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def key(self) -> str:
        return _qualified(self.name, self.labels)


class MetricsRegistry:
    """Get-or-create store of instruments, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, tuple], Counter] = {}
        self._gauges: Dict[Tuple[str, tuple], Gauge] = {}
        self._timers: Dict[Tuple[str, tuple], TimerHist] = {}

    # -- instruments ------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, key[1])
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, key[1])
        return inst

    def timer(self, name: str, buckets: Optional[Sequence[float]] = None,
              **labels: Any) -> TimerHist:
        key = (name, _label_key(labels))
        inst = self._timers.get(key)
        if inst is None:
            inst = self._timers[key] = TimerHist(
                name, key[1], buckets=buckets or DEFAULT_BUCKETS)
        return inst

    # -- queries ----------------------------------------------------------------

    def counters(self, name: Optional[str] = None) -> List[Counter]:
        return [c for c in self._counters.values()
                if name is None or c.name == name]

    def gauges(self, name: Optional[str] = None) -> List[Gauge]:
        return [g for g in self._gauges.values()
                if name is None or g.name == name]

    def timers(self, name: Optional[str] = None) -> List[TimerHist]:
        return [t for t in self._timers.values()
                if name is None or t.name == name]

    def counter_value(self, name: str, **labels: Any) -> float:
        """The current value, 0.0 if the counter was never touched."""
        inst = self._counters.get((name, _label_key(labels)))
        return inst.value if inst is not None else 0.0

    def sum_counter(self, name: str, **labels: Any) -> float:
        """Sum of a counter family over all label sets matching *labels*."""
        want = dict(_label_key(labels))
        total = 0.0
        for c in self._counters.values():
            if c.name != name:
                continue
            have = dict(c.labels)
            if all(have.get(k) == v for k, v in want.items()):
                total += c.value
        return total

    # -- export -----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A plain-JSON view of every instrument (sorted, deterministic)."""
        counters = {c.key: c.value
                    for c in sorted(self._counters.values(),
                                    key=lambda c: c.key)}
        gauges = {g.key: {"value": g.value, "max": g.max_value}
                  for g in sorted(self._gauges.values(), key=lambda g: g.key)}
        timers = {}
        for t in sorted(self._timers.values(), key=lambda t: t.key):
            timers[t.key] = {
                "count": t.count,
                "sum": t.sum,
                "mean": t.mean,
                "min": t.min if t.count else 0.0,
                "max": t.max,
                "buckets": {f"le_{b:g}": n for b, n in
                            zip(t.buckets, t.bucket_counts)},
                "overflow": t.bucket_counts[-1],
            }
        return {"counters": counters, "gauges": gauges, "timers": timers}

    def render_text(self) -> str:
        """Aligned text tables of every instrument."""
        parts = []
        if self._counters:
            rows = [(c.key, f"{c.value:g}")
                    for c in sorted(self._counters.values(),
                                    key=lambda c: c.key)]
            parts.append(format_table(["counter", "value"], rows))
        if self._gauges:
            rows = [(g.key, f"{g.value:g}", f"{g.max_value:g}")
                    for g in sorted(self._gauges.values(),
                                    key=lambda g: g.key)]
            parts.append(format_table(["gauge", "value", "max"], rows))
        if self._timers:
            rows = [(t.key, t.count, f"{t.sum:.6f}", f"{t.mean:.6f}",
                     f"{t.min if t.count else 0.0:.6f}", f"{t.max:.6f}")
                    for t in sorted(self._timers.values(),
                                    key=lambda t: t.key)]
            parts.append(format_table(
                ["timer", "count", "sum_s", "mean_s", "min_s", "max_s"],
                rows))
        return "\n\n".join(parts) if parts else "(no metrics recorded)"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<MetricsRegistry counters={len(self._counters)} "
                f"gauges={len(self._gauges)} timers={len(self._timers)}>")
