"""Typed AST for the directive language.

A parsed pragma is a :class:`Directive`: a kind (which directive of the
``target`` / ``target spread`` families it is) plus a list of typed clause
nodes.  Expressions are tiny affine trees over integer literals, host-code
identifiers, and the two special spread identifiers.

Clause and section nodes carry a ``pos`` — the character offset of the
node in the (stripped) pragma text — so sema and lint diagnostics can
point a caret at the offending clause.  ``pos`` is excluded from equality
so that two parses of equivalent text (e.g. a round-trip through unparse,
which reflows the clauses) still compare AST-equal.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class of section/clause argument expressions."""

    def idents(self) -> set:
        """Free identifiers (excluding the spread symbols)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Num(Expr):
    value: int

    def idents(self) -> set:
        return set()


@dataclass(frozen=True)
class Ident(Expr):
    """A host-code identifier; ``omp_spread_start``/``omp_spread_size`` are
    recognized here and resolved specially by sema/codegen."""

    name: str

    @property
    def is_spread_symbol(self) -> bool:
        return self.name in ("omp_spread_start", "omp_spread_size")

    def idents(self) -> set:
        return set() if self.is_spread_symbol else {self.name}


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # '+', '-', '*'
    left: Expr
    right: Expr

    def idents(self) -> set:
        return self.left.idents() | self.right.idents()


@dataclass(frozen=True)
class SectionNode:
    """``name[start : length]`` — or the bare array when start is None."""

    name: str
    start: Optional[Expr] = None
    length: Optional[Expr] = None
    pos: Optional[int] = field(default=None, compare=False, repr=False)

    @property
    def whole_array(self) -> bool:
        return self.start is None


# ---------------------------------------------------------------------------
# directives and clauses
# ---------------------------------------------------------------------------

class DirectiveKind(enum.Enum):
    TARGET = "target"
    TARGET_TEAMS_DPF = "target teams distribute parallel for"
    TARGET_DATA = "target data"
    TARGET_ENTER_DATA = "target enter data"
    TARGET_EXIT_DATA = "target exit data"
    TARGET_UPDATE = "target update"
    TARGET_SPREAD = "target spread"
    TARGET_SPREAD_TEAMS_DPF = "target spread teams distribute parallel for"
    TARGET_DATA_SPREAD = "target data spread"
    TARGET_ENTER_DATA_SPREAD = "target enter data spread"
    TARGET_EXIT_DATA_SPREAD = "target exit data spread"
    TARGET_UPDATE_SPREAD = "target update spread"

    @property
    def is_spread(self) -> bool:
        return "spread" in self.value

    @property
    def is_executable(self) -> bool:
        return self in (DirectiveKind.TARGET, DirectiveKind.TARGET_TEAMS_DPF,
                        DirectiveKind.TARGET_SPREAD,
                        DirectiveKind.TARGET_SPREAD_TEAMS_DPF)

    @property
    def is_data(self) -> bool:
        return not self.is_executable


class Clause:
    """Base class of clause nodes."""

    name = "clause"


@dataclass(frozen=True)
class DeviceClause(Clause):
    name = "device"
    device: Expr = Num(0)
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class DevicesClause(Clause):
    """``devices(0, 1, ...)`` — or ``devices(*)`` for *all* devices.

    ``devices(*)`` leaves the device list a free parameter of the machine:
    codegen resolves it against the runtime's topology, and the linter can
    quantify verdicts over every machine size N >= 1.
    """

    name = "devices"
    devices: Tuple[Expr, ...] = ()
    all_devices: bool = False
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class SpreadScheduleClause(Clause):
    name = "spread_schedule"
    kind: str = "static"
    chunk: Optional[Expr] = None
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class RangeClause(Clause):
    name = "range"
    start: Expr = Num(0)
    length: Expr = Num(0)
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class ChunkSizeClause(Clause):
    name = "chunk_size"
    chunk: Expr = Num(1)
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class MapClauseNode(Clause):
    name = "map"
    map_type: str = "tofrom"  # to / from / tofrom / alloc / release / delete
    items: Tuple[SectionNode, ...] = ()
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class MotionClause(Clause):
    """``to(...)`` / ``from(...)`` of target update."""

    name = "motion"
    direction: str = "to"  # 'to' | 'from'
    items: Tuple[SectionNode, ...] = ()
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class DependClause(Clause):
    name = "depend"
    kind: str = "inout"  # in / out / inout
    items: Tuple[SectionNode, ...] = ()
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class NowaitClause(Clause):
    name = "nowait"
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class FuseTransfersClause(Clause):
    """``fuse_transfers`` — coalesce a chunk's per-variable memcpys into
    one staged transfer, trading per-call latency for one big copy."""

    name = "fuse_transfers"
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class NumTeamsClause(Clause):
    name = "num_teams"
    value: Expr = Num(1)
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class ThreadLimitClause(Clause):
    name = "thread_limit"
    value: Expr = Num(1)
    pos: Optional[int] = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Directive:
    """A fully parsed pragma.

    ``simd_suffix`` records whether the combined directive carried the
    optional ``simd`` keyword (Listings 2/4); the cost model folds SIMT
    lanes into thread parallelism, so the suffix is accepted and preserved
    (unparse round-trips it) without changing the lowering.
    """

    kind: DirectiveKind
    clauses: Tuple[Clause, ...]
    source: str = ""
    simd_suffix: bool = False

    def find(self, clause_type) -> Optional[Clause]:
        for clause in self.clauses:
            if isinstance(clause, clause_type):
                return clause
        return None

    def find_all(self, clause_type) -> List[Clause]:
        return [c for c in self.clauses if isinstance(c, clause_type)]
