"""Recursive-descent parser for the directive language.

Grammar (clauses may appear in any order after the directive name)::

    pragma     := ["#pragma"] "omp" directive clause*
    directive  := "target" ["spread"] [exec-tail | data-tail]
    exec-tail  := "teams" "distribute" "parallel" "for" ["simd"]
    data-tail  := "data" | "enter" "data" | "exit" "data" | "update"
                  (each optionally followed by "spread")
    clause     := device | devices | spread_schedule | range | chunk_size
                | map | to | from | depend | nowait | fuse_transfers
                | num_teams | thread_limit
    section    := IDENT [ "[" expr ":" expr "]" ]
    expr       := term (("+"|"-") term)*
    term       := factor ("*" factor)*
    factor     := NUM | IDENT | "(" expr ")" | "-" factor
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.pragma import ast_nodes as A
from repro.pragma.lexer import Token, TokenKind, tokenize
from repro.util.errors import OmpSyntaxError

_MAP_TYPES = ("to", "from", "tofrom", "alloc", "release", "delete")
_DEP_KINDS = ("in", "out", "inout")


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0
        self.saw_simd = False

    # -- token helpers ----------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def at_ident(self, *names: str) -> bool:
        tok = self.peek()
        return tok.kind is TokenKind.IDENT and (not names or tok.text in names)

    def expect(self, kind: TokenKind, what: str = "") -> Token:
        tok = self.peek()
        if tok.kind is not kind:
            raise OmpSyntaxError(
                f"expected {what or kind.value}, found {tok.text or 'end of pragma'!r}",
                self.source, tok.pos)
        return self.advance()

    def expect_ident(self, name: str) -> Token:
        tok = self.peek()
        if tok.kind is not TokenKind.IDENT or tok.text != name:
            raise OmpSyntaxError(
                f"expected {name!r}, found {tok.text or 'end of pragma'!r}",
                self.source, tok.pos)
        return self.advance()

    def error(self, message: str) -> OmpSyntaxError:
        return OmpSyntaxError(message, self.source, self.peek().pos)

    # -- directive name -----------------------------------------------------------

    def parse_directive_kind(self) -> A.DirectiveKind:
        if self.at_ident("pragma"):
            self.advance()
        self.expect_ident("omp")
        self.expect_ident("target")
        spread = False
        if self.at_ident("spread"):
            self.advance()
            spread = True
        if self.at_ident("teams"):
            self.advance()
            self.expect_ident("distribute")
            self.expect_ident("parallel")
            self.expect_ident("for")
            if self.at_ident("simd"):
                self.advance()
                self.saw_simd = True
            return (A.DirectiveKind.TARGET_SPREAD_TEAMS_DPF if spread
                    else A.DirectiveKind.TARGET_TEAMS_DPF)
        if self.at_ident("data"):
            self.advance()
            spread = spread or self._eat_spread()
            return (A.DirectiveKind.TARGET_DATA_SPREAD if spread
                    else A.DirectiveKind.TARGET_DATA)
        if self.at_ident("enter"):
            self.advance()
            self.expect_ident("data")
            spread = spread or self._eat_spread()
            return (A.DirectiveKind.TARGET_ENTER_DATA_SPREAD if spread
                    else A.DirectiveKind.TARGET_ENTER_DATA)
        if self.at_ident("exit"):
            self.advance()
            self.expect_ident("data")
            spread = spread or self._eat_spread()
            return (A.DirectiveKind.TARGET_EXIT_DATA_SPREAD if spread
                    else A.DirectiveKind.TARGET_EXIT_DATA)
        if self.at_ident("update"):
            self.advance()
            spread = spread or self._eat_spread()
            return (A.DirectiveKind.TARGET_UPDATE_SPREAD if spread
                    else A.DirectiveKind.TARGET_UPDATE)
        return (A.DirectiveKind.TARGET_SPREAD if spread
                else A.DirectiveKind.TARGET)

    def _eat_spread(self) -> bool:
        if self.at_ident("spread"):
            self.advance()
            return True
        return False

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        node = self.parse_term()
        while self.peek().kind in (TokenKind.PLUS, TokenKind.MINUS):
            op = self.advance().text
            node = A.BinOp(op, node, self.parse_term())
        return node

    def parse_term(self) -> A.Expr:
        node = self.parse_factor()
        while self.peek().kind is TokenKind.STAR:
            self.advance()
            node = A.BinOp("*", node, self.parse_factor())
        return node

    def parse_factor(self) -> A.Expr:
        tok = self.peek()
        if tok.kind is TokenKind.NUM:
            self.advance()
            return A.Num(int(tok.text))
        if tok.kind is TokenKind.IDENT:
            self.advance()
            return A.Ident(tok.text)
        if tok.kind is TokenKind.LPAREN:
            self.advance()
            node = self.parse_expr()
            self.expect(TokenKind.RPAREN)
            return node
        if tok.kind is TokenKind.MINUS:
            self.advance()
            return A.BinOp("-", A.Num(0), self.parse_factor())
        raise self.error(f"expected expression, found {tok.text or 'end of pragma'!r}")

    # -- sections -----------------------------------------------------------------

    def parse_section(self) -> A.SectionNode:
        tok = self.expect(TokenKind.IDENT, "array name")
        name = tok.text
        if self.peek().kind is not TokenKind.LBRACKET:
            return A.SectionNode(name, pos=tok.pos)
        self.advance()
        start = self.parse_expr()
        self.expect(TokenKind.COLON, "':' in array section")
        length = self.parse_expr()
        self.expect(TokenKind.RBRACKET, "']'")
        return A.SectionNode(name, start, length, pos=tok.pos)

    def parse_section_list(self) -> Tuple[A.SectionNode, ...]:
        items = [self.parse_section()]
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            items.append(self.parse_section())
        return tuple(items)

    # -- clauses ---------------------------------------------------------------

    def parse_clauses(self) -> Tuple[A.Clause, ...]:
        clauses: List[A.Clause] = []
        while self.peek().kind is not TokenKind.EOF:
            clauses.append(self.parse_clause())
        return tuple(clauses)

    def parse_clause(self) -> A.Clause:
        tok = self.peek()
        if tok.kind is not TokenKind.IDENT:
            raise self.error(f"expected a clause, found {tok.text!r}")
        name = tok.text
        handler = getattr(self, f"_clause_{name}", None)
        if handler is None:
            raise self.error(f"unknown clause {name!r}")
        self.advance()
        clause = handler()
        # Stamp the clause-keyword offset; pos compares equal regardless
        # (compare=False) so round-trip AST equality is unaffected.
        return dataclasses.replace(clause, pos=tok.pos)

    def _paren_open(self) -> None:
        self.expect(TokenKind.LPAREN, "'('")

    def _paren_close(self) -> None:
        self.expect(TokenKind.RPAREN, "')'")

    def _clause_device(self) -> A.Clause:
        self._paren_open()
        expr = self.parse_expr()
        self._paren_close()
        return A.DeviceClause(device=expr)

    def _clause_devices(self) -> A.Clause:
        self._paren_open()
        # devices(*): all devices of the machine the program runs on.
        # The lone star must be the whole argument — a leading '*' can
        # never start an expression, so there is no ambiguity.
        if self.peek().kind is TokenKind.STAR:
            self.advance()
            self._paren_close()
            return A.DevicesClause(all_devices=True)
        devices = [self.parse_expr()]
        while self.peek().kind is TokenKind.COMMA:
            self.advance()
            devices.append(self.parse_expr())
        self._paren_close()
        return A.DevicesClause(devices=tuple(devices))

    def _clause_spread_schedule(self) -> A.Clause:
        self._paren_open()
        kind = self.expect(TokenKind.IDENT, "schedule kind").text
        chunk: Optional[A.Expr] = None
        if self.peek().kind is TokenKind.COMMA:
            self.advance()
            chunk = self.parse_expr()
        self._paren_close()
        return A.SpreadScheduleClause(kind=kind, chunk=chunk)

    def _clause_range(self) -> A.Clause:
        self._paren_open()
        start = self.parse_expr()
        self.expect(TokenKind.COLON, "':' in range clause")
        length = self.parse_expr()
        self._paren_close()
        return A.RangeClause(start=start, length=length)

    def _clause_chunk_size(self) -> A.Clause:
        self._paren_open()
        chunk = self.parse_expr()
        self._paren_close()
        return A.ChunkSizeClause(chunk=chunk)

    def _clause_map(self) -> A.Clause:
        self._paren_open()
        map_type = "tofrom"
        # "map(to: ...)" vs "map(A[...])": a map type is an IDENT followed
        # by ':'.
        tok = self.peek()
        if (tok.kind is TokenKind.IDENT and tok.text in _MAP_TYPES
                and self.tokens[self.pos + 1].kind is TokenKind.COLON):
            map_type = self.advance().text
            self.advance()  # ':'
        items = self.parse_section_list()
        self._paren_close()
        return A.MapClauseNode(map_type=map_type, items=items)

    def _clause_to(self) -> A.Clause:
        self._paren_open()
        items = self.parse_section_list()
        self._paren_close()
        return A.MotionClause(direction="to", items=items)

    # 'from' is a valid identifier for the lexer
    def _clause_from(self) -> A.Clause:
        self._paren_open()
        items = self.parse_section_list()
        self._paren_close()
        return A.MotionClause(direction="from", items=items)

    def _clause_depend(self) -> A.Clause:
        self._paren_open()
        kind = self.expect(TokenKind.IDENT, "dependence kind").text
        if kind not in _DEP_KINDS:
            raise OmpSyntaxError(
                f"unknown dependence kind {kind!r} (expected in/out/inout)",
                self.source, self.tokens[self.pos - 1].pos)
        self.expect(TokenKind.COLON, "':'")
        items = self.parse_section_list()
        self._paren_close()
        return A.DependClause(kind=kind, items=items)

    def _clause_nowait(self) -> A.Clause:
        return A.NowaitClause()

    def _clause_fuse_transfers(self) -> A.Clause:
        return A.FuseTransfersClause()

    def _clause_num_teams(self) -> A.Clause:
        self._paren_open()
        value = self.parse_expr()
        self._paren_close()
        return A.NumTeamsClause(value=value)

    def _clause_thread_limit(self) -> A.Clause:
        self._paren_open()
        value = self.parse_expr()
        self._paren_close()
        return A.ThreadLimitClause(value=value)


def parse_pragma(source: str) -> A.Directive:
    """Parse one pragma string into a :class:`Directive` AST.

    Accepts the body of the pragma with or without the leading ``#pragma``
    (the ``#`` itself must be stripped; listings' line continuations are
    tolerated).
    """
    text = source.strip()
    if text.startswith("#"):
        text = text[1:]
    parser = _Parser(text)
    kind = parser.parse_directive_kind()
    clauses = parser.parse_clauses()
    return A.Directive(kind=kind, clauses=clauses, source=source,
                       simd_suffix=parser.saw_simd)
