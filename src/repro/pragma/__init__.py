"""A pragma-string compiler frontend for the directive language.

The paper implements its directives inside Clang: lexical module, parser,
AST builder, semantics module and code generator (Section III-C).  This
package reproduces that pipeline for pragma *strings*, so the exact syntax
of the listings works in Python::

    execute_pragma(omp,
        "omp target spread teams distribute parallel for"
        " devices(2,0,1) spread_schedule(static, 4)"
        " map(to: A[omp_spread_start-1 : omp_spread_size+2])"
        " map(from: B[omp_spread_start : omp_spread_size]) nowait",
        symbols={"A": var_a, "B": var_b, "N": n},
        body=kernel)

Stages: :mod:`lexer` tokenizes, :mod:`parser` builds the typed AST
(:mod:`ast_nodes`), :mod:`sema` enforces every restriction the paper states
(and gates the §IX extensions), :mod:`codegen` lowers to the runtime calls
of :mod:`repro.openmp` / :mod:`repro.spread`.
"""

from repro.pragma.lexer import tokenize, Token, TokenKind
from repro.pragma.ast_nodes import (
    Directive,
    DirectiveKind,
    Clause,
    Expr,
    Num,
    Ident,
    BinOp,
    SectionNode,
)
from repro.pragma.parser import parse_pragma
from repro.pragma.sema import check_directive
from repro.pragma.codegen import execute_pragma, lower_directive
from repro.pragma.unparse import unparse_directive

__all__ = [
    "tokenize",
    "Token",
    "TokenKind",
    "Directive",
    "DirectiveKind",
    "Clause",
    "Expr",
    "Num",
    "Ident",
    "BinOp",
    "SectionNode",
    "parse_pragma",
    "check_directive",
    "execute_pragma",
    "lower_directive",
    "unparse_directive",
]
