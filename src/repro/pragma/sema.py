"""Semantic checking of parsed directives.

Enforces the rules the paper states (and the obvious OpenMP ones):

* clause admissibility per directive — e.g. ``device`` on single-device
  directives only, ``devices``/``range``/``chunk_size`` on spread ones;
* ``target data spread`` supports neither ``nowait`` nor ``depend``
  (Section III-B.3) and has no ``spread_schedule`` clause;
* ``depend`` on ``target enter/exit data spread`` / ``target update
  spread`` is §IX future work — rejected unless the extension is enabled;
* ``spread_schedule`` supports only ``static`` (non-static kinds are
  extensions);
* map-type admissibility (``to``/``alloc`` on enter, ``from``/``release``/
  ``delete`` on exit, ...);
* ``omp_spread_start``/``omp_spread_size`` may only appear inside sections
  of spread directives;
* required clauses (``devices`` etc.) and at-most-once clauses.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple, Type

from repro.pragma import ast_nodes as A
from repro.spread.extensions import Extensions
from repro.util.errors import OmpSemaError

_D = A.DirectiveKind

#: allowed clause node types per directive kind
_ALLOWED: Dict[A.DirectiveKind, Tuple[Type[A.Clause], ...]] = {
    _D.TARGET: (A.DeviceClause, A.MapClauseNode, A.DependClause,
                A.NowaitClause),
    _D.TARGET_TEAMS_DPF: (A.DeviceClause, A.MapClauseNode, A.DependClause,
                          A.NowaitClause, A.NumTeamsClause,
                          A.ThreadLimitClause),
    _D.TARGET_DATA: (A.DeviceClause, A.MapClauseNode),
    _D.TARGET_ENTER_DATA: (A.DeviceClause, A.MapClauseNode, A.DependClause,
                           A.NowaitClause),
    _D.TARGET_EXIT_DATA: (A.DeviceClause, A.MapClauseNode, A.DependClause,
                          A.NowaitClause),
    _D.TARGET_UPDATE: (A.DeviceClause, A.MotionClause, A.DependClause,
                       A.NowaitClause),
    _D.TARGET_SPREAD: (A.DevicesClause, A.SpreadScheduleClause,
                       A.MapClauseNode, A.DependClause, A.NowaitClause,
                       A.FuseTransfersClause),
    _D.TARGET_SPREAD_TEAMS_DPF: (A.DevicesClause, A.SpreadScheduleClause,
                                 A.MapClauseNode, A.DependClause,
                                 A.NowaitClause, A.NumTeamsClause,
                                 A.ThreadLimitClause, A.FuseTransfersClause),
    _D.TARGET_DATA_SPREAD: (A.DevicesClause, A.RangeClause,
                            A.ChunkSizeClause, A.MapClauseNode,
                            A.FuseTransfersClause),
    _D.TARGET_ENTER_DATA_SPREAD: (A.DevicesClause, A.RangeClause,
                                  A.ChunkSizeClause, A.MapClauseNode,
                                  A.NowaitClause, A.DependClause,
                                  A.FuseTransfersClause),
    _D.TARGET_EXIT_DATA_SPREAD: (A.DevicesClause, A.RangeClause,
                                 A.ChunkSizeClause, A.MapClauseNode,
                                 A.NowaitClause, A.DependClause,
                                 A.FuseTransfersClause),
    _D.TARGET_UPDATE_SPREAD: (A.DevicesClause, A.RangeClause,
                              A.ChunkSizeClause, A.MotionClause,
                              A.NowaitClause, A.DependClause),
}

#: clauses required per directive kind
_REQUIRED: Dict[A.DirectiveKind, Tuple[Type[A.Clause], ...]] = {
    _D.TARGET_SPREAD: (A.DevicesClause,),
    _D.TARGET_SPREAD_TEAMS_DPF: (A.DevicesClause,),
    _D.TARGET_DATA_SPREAD: (A.DevicesClause, A.RangeClause,
                            A.ChunkSizeClause),
    _D.TARGET_ENTER_DATA_SPREAD: (A.DevicesClause, A.RangeClause,
                                  A.ChunkSizeClause),
    _D.TARGET_EXIT_DATA_SPREAD: (A.DevicesClause, A.RangeClause,
                                 A.ChunkSizeClause),
    _D.TARGET_UPDATE_SPREAD: (A.DevicesClause, A.RangeClause,
                              A.ChunkSizeClause),
    _D.TARGET_UPDATE: (A.MotionClause,),
    _D.TARGET_UPDATE_SPREAD: (A.DevicesClause, A.RangeClause,
                              A.ChunkSizeClause, A.MotionClause),
}

#: clauses that may appear at most once
_AT_MOST_ONCE = (A.DeviceClause, A.DevicesClause, A.SpreadScheduleClause,
                 A.RangeClause, A.ChunkSizeClause, A.NowaitClause,
                 A.NumTeamsClause, A.ThreadLimitClause,
                 A.FuseTransfersClause)

_MAP_TYPES_ALLOWED: Dict[A.DirectiveKind, Set[str]] = {
    _D.TARGET: {"to", "from", "tofrom", "alloc"},
    _D.TARGET_TEAMS_DPF: {"to", "from", "tofrom", "alloc"},
    _D.TARGET_SPREAD: {"to", "from", "tofrom", "alloc"},
    _D.TARGET_SPREAD_TEAMS_DPF: {"to", "from", "tofrom", "alloc"},
    _D.TARGET_DATA: {"to", "from", "tofrom", "alloc"},
    _D.TARGET_DATA_SPREAD: {"to", "from", "tofrom", "alloc"},
    _D.TARGET_ENTER_DATA: {"to", "alloc"},
    _D.TARGET_ENTER_DATA_SPREAD: {"to", "alloc"},
    _D.TARGET_EXIT_DATA: {"from", "release", "delete"},
    _D.TARGET_EXIT_DATA_SPREAD: {"from", "release", "delete"},
}

#: data-spread directives on which depend is §IX future work
_DEPEND_IS_EXTENSION = (_D.TARGET_ENTER_DATA_SPREAD,
                        _D.TARGET_EXIT_DATA_SPREAD,
                        _D.TARGET_UPDATE_SPREAD)


def _pragma_text(directive: A.Directive) -> str:
    """The text node positions are offsets into (see ``parse_pragma``)."""
    text = directive.source.strip()
    if text.startswith("#"):
        text = text[1:]
    return text


def _err(directive: A.Directive, message: str,
         pos: Optional[int] = None) -> OmpSemaError:
    return OmpSemaError(f"{directive.kind.value}: {message}",
                        source=_pragma_text(directive), offset=pos)


def _expr_uses_spread_symbols(expr: Optional[A.Expr]) -> bool:
    if expr is None:
        return False
    if isinstance(expr, A.Ident):
        return expr.is_spread_symbol
    if isinstance(expr, A.BinOp):
        return (_expr_uses_spread_symbols(expr.left)
                or _expr_uses_spread_symbols(expr.right))
    return False


def _sections_of(clause: A.Clause) -> Sequence[A.SectionNode]:
    if isinstance(clause, (A.MapClauseNode, A.MotionClause, A.DependClause)):
        return clause.items
    return ()


def check_directive(directive: A.Directive,
                    extensions: Optional[Extensions] = None) -> None:
    """Validate one directive AST; raises :class:`OmpSemaError`."""
    ext = extensions if extensions is not None else Extensions()
    kind = directive.kind
    allowed = _ALLOWED[kind]

    # clause admissibility + multiplicity
    seen_once: Set[type] = set()
    for clause in directive.clauses:
        if not isinstance(clause, allowed):
            raise _err(directive,
                       f"clause {clause.name!r} is not allowed here",
                       pos=clause.pos)
        if isinstance(clause, _AT_MOST_ONCE):
            if type(clause) in seen_once:
                raise _err(directive,
                           f"clause {clause.name!r} appears more than once",
                           pos=clause.pos)
            seen_once.add(type(clause))

    # required clauses
    for req in _REQUIRED.get(kind, ()):
        if directive.find(req) is None:
            raise _err(directive,
                       f"missing required clause {req.name!r}")

    # devices list must be non-empty (devices(*) resolves to all devices)
    devices = directive.find(A.DevicesClause)
    if (devices is not None and not devices.devices
            and not devices.all_devices):
        raise _err(directive, "devices() needs at least one device",
                   pos=devices.pos)

    # spread_schedule kind restriction (static only; extensions gated)
    sched = directive.find(A.SpreadScheduleClause)
    if sched is not None:
        if sched.kind == "static":
            pass
        elif sched.kind in ("dynamic", "static_irregular"):
            if not ext.schedules:
                raise _err(directive,
                           f"spread_schedule({sched.kind}, ...) is not "
                           "supported yet (paper supports only 'static'; "
                           "enable the schedules extension)",
                           pos=sched.pos)
        else:
            raise _err(directive,
                       f"unknown spread_schedule kind {sched.kind!r}",
                       pos=sched.pos)

    # depend on data-spread directives is future work (§IX)
    if kind in _DEPEND_IS_EXTENSION and directive.find(A.DependClause):
        if not ext.data_depend:
            raise _err(directive,
                       "the depend clause is not supported yet on this "
                       "directive (paper §IX future work; enable the "
                       "data_depend extension)",
                       pos=directive.find(A.DependClause).pos)

    # map-type admissibility
    for clause in directive.find_all(A.MapClauseNode):
        allowed_types = _MAP_TYPES_ALLOWED[kind]
        if clause.map_type not in allowed_types:
            raise _err(directive,
                       f"map type {clause.map_type!r} not allowed "
                       f"(expected {'/'.join(sorted(allowed_types))})",
                       pos=clause.pos)

    # update motion directions
    for clause in directive.find_all(A.MotionClause):
        if clause.direction not in ("to", "from"):
            raise _err(directive,
                       f"unknown update direction {clause.direction!r}",
                       pos=clause.pos)

    # spread symbols only inside spread-directive sections
    for clause in directive.clauses:
        for section in _sections_of(clause):
            uses = (_expr_uses_spread_symbols(section.start)
                    or _expr_uses_spread_symbols(section.length))
            if uses and not kind.is_spread:
                raise _err(directive,
                           "omp_spread_start/omp_spread_size are only "
                           "defined inside spread directives",
                           pos=section.pos)
        # ... and nowhere outside sections
        for attr in ("device", "chunk", "start", "length", "value"):
            expr = getattr(clause, attr, None)
            if isinstance(expr, A.Expr) and _expr_uses_spread_symbols(expr):
                raise _err(directive,
                           "omp_spread_start/omp_spread_size may only "
                           "appear inside array sections",
                           pos=clause.pos)
        if isinstance(clause, A.DevicesClause):
            for expr in clause.devices:
                if _expr_uses_spread_symbols(expr):
                    raise _err(directive,
                               "omp_spread_start/omp_spread_size may not "
                               "appear in the devices clause",
                               pos=clause.pos)
