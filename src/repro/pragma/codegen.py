"""Code generation: lowering a directive AST onto the runtime.

The analogue of the paper's Clang codegen changes: a checked
:class:`~repro.pragma.ast_nodes.Directive` plus a *symbol environment*
(mapping identifier names to :class:`~repro.openmp.mapping.Var` objects and
integer scalars) is lowered to the directive functions of
:mod:`repro.openmp` and :mod:`repro.spread`.

Entry point: :func:`execute_pragma` — parse, check, lower and drive with
``yield from`` inside a host program.  Executable directives additionally
take the associated loop: its ``(lo, hi)`` bounds and the
:class:`~repro.device.kernel.KernelSpec` body — the paper's restriction
that a ``target spread`` must be followed by a loop becomes "``loop`` and
``body`` are required" here.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple, Union

import numpy as np

from repro.device.kernel import KernelSpec
# NB: the package attribute `repro.openmp.target` is shadowed by the
# directive *function* of the same name, so bind the module explicitly.
import importlib

T = importlib.import_module("repro.openmp.target")
from repro.openmp.depend import Dep, DepKind
from repro.openmp.mapping import Map, MapClause, MapType, Var
from repro.openmp.tasks import TaskCtx
from repro.pragma import ast_nodes as A
from repro.pragma.parser import parse_pragma
from repro.pragma.sema import check_directive
from repro.spread import extensions as ext_mod
from repro.spread import spread_data as SD
from repro.spread import spread_target as ST
from repro.spread.schedule import HierarchicalStaticSchedule, spread_schedule
from repro.spread.sections import SpreadExpr, omp_spread_size, omp_spread_start
from repro.util.errors import OmpSemaError

_D = A.DirectiveKind

#: values an expression may evaluate to
ExprValue = Union[int, SpreadExpr]

Symbols = Dict[str, Any]


# ---------------------------------------------------------------------------
# expression evaluation
# ---------------------------------------------------------------------------

def eval_expr(expr: A.Expr, symbols: Symbols) -> ExprValue:
    """Evaluate an AST expression to an int or an affine spread expression."""
    if isinstance(expr, A.Num):
        return expr.value
    if isinstance(expr, A.Ident):
        if expr.name == "omp_spread_start":
            return omp_spread_start
        if expr.name == "omp_spread_size":
            return omp_spread_size
        try:
            value = symbols[expr.name]
        except KeyError:
            raise OmpSemaError(f"undefined identifier {expr.name!r} in "
                               "directive expression")
        if isinstance(value, (int, np.integer)):
            return int(value)
        raise OmpSemaError(
            f"identifier {expr.name!r} is not an integer scalar "
            f"(got {type(value).__name__}); arrays may only appear as "
            "section bases")
    if isinstance(expr, A.BinOp):
        left = eval_expr(expr.left, symbols)
        right = eval_expr(expr.right, symbols)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            if isinstance(left, SpreadExpr) and isinstance(right, SpreadExpr):
                raise OmpSemaError(
                    "section expressions must stay affine in "
                    "omp_spread_start/omp_spread_size")
            return left * right
        raise OmpSemaError(f"unknown operator {expr.op!r}")
    raise OmpSemaError(f"unsupported expression node {expr!r}")


def eval_int(expr: A.Expr, symbols: Symbols, what: str) -> int:
    value = eval_expr(expr, symbols)
    if isinstance(value, SpreadExpr):
        raise OmpSemaError(f"{what}: expected an integer expression")
    return int(value)


def _lookup_var(name: str, symbols: Symbols) -> Var:
    try:
        value = symbols[name]
    except KeyError:
        raise OmpSemaError(f"undefined array {name!r} in map/depend clause")
    if isinstance(value, Var):
        return value
    if isinstance(value, np.ndarray):
        raise OmpSemaError(
            f"{name!r} is a raw ndarray; wrap it in repro.openmp.Var so the "
            "runtime can name it")
    raise OmpSemaError(f"{name!r} does not name an array (got "
                       f"{type(value).__name__})")


def _eval_section(node: A.SectionNode, symbols: Symbols):
    var = _lookup_var(node.name, symbols)
    if node.whole_array:
        return var, None
    start = eval_expr(node.start, symbols)
    length = eval_expr(node.length, symbols)
    return var, (start, length)


# ---------------------------------------------------------------------------
# clause materialization
# ---------------------------------------------------------------------------

_MAP_TYPE = {
    "to": MapType.TO,
    "from": MapType.FROM,
    "tofrom": MapType.TOFROM,
    "alloc": MapType.ALLOC,
    "release": MapType.RELEASE,
    "delete": MapType.DELETE,
}

_DEP_KIND = {"in": DepKind.IN, "out": DepKind.OUT, "inout": DepKind.INOUT}


def _build_maps(directive: A.Directive, symbols: Symbols) -> List[MapClause]:
    maps: List[MapClause] = []
    for clause in directive.find_all(A.MapClauseNode):
        for item in clause.items:
            var, section = _eval_section(item, symbols)
            maps.append(MapClause(_MAP_TYPE[clause.map_type], var, section))
    return maps


def _build_depends(directive: A.Directive, symbols: Symbols) -> List[Dep]:
    deps: List[Dep] = []
    for clause in directive.find_all(A.DependClause):
        for item in clause.items:
            var, section = _eval_section(item, symbols)
            deps.append(Dep(_DEP_KIND[clause.kind], var, section))
    return deps


def _build_motion(directive: A.Directive, symbols: Symbols):
    to, from_ = [], []
    for clause in directive.find_all(A.MotionClause):
        bucket = to if clause.direction == "to" else from_
        for item in clause.items:
            var, section = _eval_section(item, symbols)
            bucket.append((var, section))
    return to, from_


def _device_of(directive: A.Directive, symbols: Symbols, default: int) -> int:
    clause = directive.find(A.DeviceClause)
    if clause is None:
        return default
    return eval_int(clause.device, symbols, "device clause")


def _devices_of(directive: A.Directive, symbols: Symbols,
                ctx: TaskCtx) -> List[int]:
    clause = directive.find(A.DevicesClause)
    assert clause is not None  # sema guarantees presence
    if clause.all_devices:
        # devices(*): every device of the machine the program runs on —
        # the machine-parametric form the symbolic linter quantifies over.
        return list(range(ctx.rt.num_devices))
    return [eval_int(e, symbols, "devices clause") for e in clause.devices]


def _range_of(directive: A.Directive, symbols: Symbols) -> Tuple[int, int]:
    clause = directive.find(A.RangeClause)
    assert clause is not None
    return (eval_int(clause.start, symbols, "range clause"),
            eval_int(clause.length, symbols, "range clause"))


def _chunk_of(directive: A.Directive, symbols: Symbols) -> int:
    clause = directive.find(A.ChunkSizeClause)
    assert clause is not None
    return eval_int(clause.chunk, symbols, "chunk_size clause")


def node_groups(topology, devices: List[int]) -> List[List[int]]:
    """Group a devices list by cluster node (clause order within a node).

    Mirrors what the Somier cluster runs compute by hand: nodes first,
    then each node's devices, so chunk indices stay global and
    sequential in (node, position) order.
    """
    groups: Dict[int, List[int]] = {}
    for d in devices:
        groups.setdefault(topology.node_of(d), []).append(d)
    return [groups[n] for n in sorted(groups)]


def _schedule_of(directive: A.Directive, symbols: Symbols,
                 ctx: TaskCtx, devices: List[int]):
    clause = directive.find(A.SpreadScheduleClause)
    if clause is None:
        # On a cluster the default static split goes hierarchical — nodes
        # first, then each node's devices — matching the Somier cluster
        # implementations (and keeping a chunk's halo traffic on-node).
        if (getattr(ctx.rt, "num_nodes", 1) > 1
                and len({ctx.rt.topology.node_of(d) for d in devices}) > 1):
            return HierarchicalStaticSchedule(
                node_groups(ctx.rt.topology, devices))
        return None
    chunk = (eval_int(clause.chunk, symbols, "spread_schedule clause")
             if clause.chunk is not None else None)
    return spread_schedule(clause.kind, chunk)


def _teams_of(directive: A.Directive, symbols: Symbols):
    teams = directive.find(A.NumTeamsClause)
    threads = directive.find(A.ThreadLimitClause)
    return (eval_int(teams.value, symbols, "num_teams") if teams else None,
            eval_int(threads.value, symbols, "thread_limit") if threads else None)


def _nowait(directive: A.Directive) -> bool:
    return directive.find(A.NowaitClause) is not None


def _fuse(directive: A.Directive) -> bool:
    return directive.find(A.FuseTransfersClause) is not None


# ---------------------------------------------------------------------------
# lowering
# ---------------------------------------------------------------------------

def _require_loop(directive: A.Directive, body, loop) -> None:
    if body is None or loop is None:
        raise OmpSemaError(
            f"{directive.kind.value}: the associated block must be a loop — "
            "pass loop=(lo, hi) and a KernelSpec body")


def lower_directive(ctx: TaskCtx, directive: A.Directive, symbols: Symbols,
                    body: Optional[KernelSpec] = None,
                    loop: Optional[Tuple[int, int]] = None) -> Generator:
    """Lower one checked directive and drive it (a generator).

    Returns whatever the underlying runtime call returns (a task/handle for
    nowait directives, a region object for structured data directives).
    """
    kind = directive.kind
    maps = _build_maps(directive, symbols)
    deps = _build_depends(directive, symbols)
    nowait = _nowait(directive)
    default_dev = ctx.rt.default_device

    if kind is _D.TARGET or kind is _D.TARGET_TEAMS_DPF:
        _require_loop(directive, body, loop)
        device = _device_of(directive, symbols, default_dev)
        lo, hi = loop
        if kind is _D.TARGET:
            result = yield from T.target(ctx, device, body, lo, hi,
                                         maps=maps, nowait=nowait,
                                         depends=deps)
        else:
            teams, threads = _teams_of(directive, symbols)
            result = yield from T.target_teams_distribute_parallel_for(
                ctx, device, body, lo, hi, maps=maps,
                num_teams=teams, threads_per_team=threads,
                nowait=nowait, depends=deps)
        return result

    if kind is _D.TARGET_SPREAD or kind is _D.TARGET_SPREAD_TEAMS_DPF:
        _require_loop(directive, body, loop)
        devices = _devices_of(directive, symbols, ctx)
        schedule = _schedule_of(directive, symbols, ctx, devices)
        lo, hi = loop
        if kind is _D.TARGET_SPREAD:
            result = yield from ST.target_spread(
                ctx, body, lo, hi, devices, schedule=schedule, maps=maps,
                nowait=nowait, depends=deps,
                fuse_transfers=_fuse(directive))
        else:
            teams, threads = _teams_of(directive, symbols)
            result = yield from ST.target_spread_teams_distribute_parallel_for(
                ctx, body, lo, hi, devices, schedule=schedule, maps=maps,
                num_teams=teams, threads_per_team=threads,
                nowait=nowait, depends=deps,
                fuse_transfers=_fuse(directive))
        return result

    if kind is _D.TARGET_DATA:
        device = _device_of(directive, symbols, default_dev)
        region = yield from T.target_data(ctx, device, maps)
        return region

    if kind is _D.TARGET_ENTER_DATA:
        device = _device_of(directive, symbols, default_dev)
        result = yield from T.target_enter_data(ctx, device, maps,
                                                nowait=nowait, depends=deps)
        return result

    if kind is _D.TARGET_EXIT_DATA:
        device = _device_of(directive, symbols, default_dev)
        result = yield from T.target_exit_data(ctx, device, maps,
                                               nowait=nowait, depends=deps)
        return result

    if kind is _D.TARGET_UPDATE:
        device = _device_of(directive, symbols, default_dev)
        to, from_ = _build_motion(directive, symbols)
        result = yield from T.target_update(ctx, device, to=to, from_=from_,
                                            nowait=nowait, depends=deps)
        return result

    if kind is _D.TARGET_DATA_SPREAD:
        region = yield from SD.target_data_spread(
            ctx, _devices_of(directive, symbols, ctx),
            _range_of(directive, symbols), _chunk_of(directive, symbols),
            maps, fuse_transfers=_fuse(directive))
        return region

    if kind is _D.TARGET_ENTER_DATA_SPREAD:
        result = yield from SD.target_enter_data_spread(
            ctx, _devices_of(directive, symbols, ctx),
            _range_of(directive, symbols), _chunk_of(directive, symbols),
            maps, nowait=nowait, depends=deps,
            fuse_transfers=_fuse(directive))
        return result

    if kind is _D.TARGET_EXIT_DATA_SPREAD:
        result = yield from SD.target_exit_data_spread(
            ctx, _devices_of(directive, symbols, ctx),
            _range_of(directive, symbols), _chunk_of(directive, symbols),
            maps, nowait=nowait, depends=deps,
            fuse_transfers=_fuse(directive))
        return result

    if kind is _D.TARGET_UPDATE_SPREAD:
        to, from_ = _build_motion(directive, symbols)
        result = yield from SD.target_update_spread(
            ctx, _devices_of(directive, symbols, ctx),
            _range_of(directive, symbols), _chunk_of(directive, symbols),
            to=to, from_=from_, nowait=nowait, depends=deps)
        return result

    raise OmpSemaError(f"no lowering for {kind.value!r}")  # pragma: no cover


def execute_pragma(ctx: TaskCtx, source: str, symbols: Symbols,
                   body: Optional[KernelSpec] = None,
                   loop: Optional[Tuple[int, int]] = None) -> Generator:
    """Parse, check and execute a pragma string inside a host program.

    ``symbols`` maps the identifiers used in the pragma to
    :class:`~repro.openmp.mapping.Var` objects (arrays) and ints (scalars).
    For executable directives ``loop=(lo, hi)`` and the ``body``
    :class:`KernelSpec` supply the associated loop.
    """
    directive = parse_pragma(source)
    check_directive(directive,
                    extensions=ext_mod.get_extensions(ctx.rt))
    result = yield from lower_directive(ctx, directive, symbols,
                                        body=body, loop=loop)
    return result
