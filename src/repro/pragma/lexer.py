"""Lexical analysis of pragma strings.

Tokens carry their source offset so every later stage can produce the
caret-style diagnostics of :class:`~repro.util.errors.OmpSyntaxError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.util.errors import OmpSyntaxError


class TokenKind(enum.Enum):
    IDENT = "identifier"
    NUM = "number"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COLON = ":"
    COMMA = ","
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    EOF = "<eof>"


_PUNCT = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ":": TokenKind.COLON,
    ",": TokenKind.COMMA,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
}


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    pos: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind.name}, {self.text!r}@{self.pos})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(source: str) -> List[Token]:
    """Tokenize a pragma string (the part after ``#pragma``).

    Line continuations (``\\`` + newline, as in the paper's listings) are
    treated as whitespace.  Raises :class:`OmpSyntaxError` on any character
    outside the directive grammar.
    """
    tokens: List[Token] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "\\":
            # line continuation from copy-pasted listings
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(Token(_PUNCT[ch], ch, i))
            i += 1
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            if j < n and _is_ident_start(source[j]):
                raise OmpSyntaxError("malformed number", source, i)
            tokens.append(Token(TokenKind.NUM, source[i:j], i))
            i = j
            continue
        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident(source[j]):
                j += 1
            tokens.append(Token(TokenKind.IDENT, source[i:j], i))
            i = j
            continue
        raise OmpSyntaxError(f"unexpected character {ch!r}", source, i)
    tokens.append(Token(TokenKind.EOF, "", n))
    return tokens
