"""Unparsing: directive AST back to pragma text.

Useful for diagnostics ("which directive failed?"), for tooling that
rewrites directives, and for the parser round-trip property tests
(``parse(unparse(d)) == d``).
"""

from __future__ import annotations

from repro.pragma import ast_nodes as A


def unparse_expr(expr: A.Expr, parent_prec: int = 0) -> str:
    """Render an expression with minimal parentheses.

    Precedence levels: ``+``/``-`` = 1, ``*`` = 2, atoms = 3.  A ``-``'s
    right operand binds one level tighter (left associativity).
    """
    if isinstance(expr, A.Num):
        return str(expr.value)
    if isinstance(expr, A.Ident):
        return expr.name
    if isinstance(expr, A.BinOp):
        prec = 2 if expr.op == "*" else 1
        left = unparse_expr(expr.left, prec)
        # the right operand always binds strictly tighter: operators parse
        # left-associatively, so right-nested trees need their parentheses
        # to round-trip *structurally*, not just by value
        right = unparse_expr(expr.right, prec + 1)
        text = f"{left}{expr.op}{right}"
        if prec < parent_prec:
            return f"({text})"
        return text
    raise TypeError(f"cannot unparse {expr!r}")


def unparse_section(section: A.SectionNode) -> str:
    if section.whole_array:
        return section.name
    return (f"{section.name}[{unparse_expr(section.start)}:"
            f"{unparse_expr(section.length)}]")


def _sections(items) -> str:
    return ", ".join(unparse_section(s) for s in items)


def unparse_clause(clause: A.Clause) -> str:
    if isinstance(clause, A.DeviceClause):
        return f"device({unparse_expr(clause.device)})"
    if isinstance(clause, A.DevicesClause):
        if clause.all_devices:
            return "devices(*)"
        return "devices(" + ", ".join(unparse_expr(e)
                                      for e in clause.devices) + ")"
    if isinstance(clause, A.SpreadScheduleClause):
        if clause.chunk is None:
            return f"spread_schedule({clause.kind})"
        return f"spread_schedule({clause.kind}, {unparse_expr(clause.chunk)})"
    if isinstance(clause, A.RangeClause):
        return (f"range({unparse_expr(clause.start)}:"
                f"{unparse_expr(clause.length)})")
    if isinstance(clause, A.ChunkSizeClause):
        return f"chunk_size({unparse_expr(clause.chunk)})"
    if isinstance(clause, A.MapClauseNode):
        return f"map({clause.map_type}: {_sections(clause.items)})"
    if isinstance(clause, A.MotionClause):
        return f"{clause.direction}({_sections(clause.items)})"
    if isinstance(clause, A.DependClause):
        return f"depend({clause.kind}: {_sections(clause.items)})"
    if isinstance(clause, A.NowaitClause):
        return "nowait"
    if isinstance(clause, A.FuseTransfersClause):
        return "fuse_transfers"
    if isinstance(clause, A.NumTeamsClause):
        return f"num_teams({unparse_expr(clause.value)})"
    if isinstance(clause, A.ThreadLimitClause):
        return f"thread_limit({unparse_expr(clause.value)})"
    raise TypeError(f"cannot unparse clause {clause!r}")


def unparse_directive(directive: A.Directive) -> str:
    """Render a full pragma (without the leading ``#pragma``)."""
    name = directive.kind.value
    if directive.simd_suffix:
        name += " simd"
    parts = [f"omp {name}"]
    parts.extend(unparse_clause(c) for c in directive.clauses)
    return " ".join(parts)
