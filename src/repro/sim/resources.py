"""FIFO resources with finite capacity.

Resources model the contended pieces of the node: a socket's host link (the
paper's communication bottleneck), a device's copy engines, and a device's
compute engine.  Requests are granted strictly in arrival order, which
reproduces the paper's observation that transfers from different buffers
never overlap on the same link (Section VI-B, Fig. 4).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from repro.sim.engine import Event, Simulator


class Request(Event):
    """A pending claim on a resource; triggers when the slot is granted."""

    __slots__ = ("resource", "tag", "owner")

    def __init__(self, sim: Simulator, resource: "Resource", tag: Any = None):
        super().__init__(sim)
        self.resource = resource
        self.tag = tag
        # Causal-recorder op id of the device op holding/waiting on this
        # slot (see repro.obs.critpath); None when analysis is off or the
        # claimant is an internal helper (device-sync, staging holds).
        self.owner: Any = None

    def release(self) -> None:
        self.resource.release(self)


class Resource:
    """A capacity-limited FIFO resource.

    ``capacity`` slots may be held simultaneously; further requests queue.
    The resource also keeps simple occupancy statistics (grant count, busy
    time for capacity-1 resources) that the trace analysis uses for
    utilization reports.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: List[Request] = []
        # FIFO waiters; a deque so the release-time dequeue is O(1) even
        # with hundreds of queued chunk launches on one device.
        self._queue: Deque[Request] = deque()
        # statistics
        self.grant_count = 0
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None
        self.max_queue_len = 0

    # -- core protocol -----------------------------------------------------

    @property
    def in_use(self) -> int:
        return len(self._users)

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def request(self, tag: Any = None) -> Request:
        """Claim a slot; the returned event triggers once granted."""
        req = Request(self.sim, self, tag=tag)
        if len(self._users) < self.capacity:
            self._grant(req)
        else:
            self._queue.append(req)
            self.max_queue_len = max(self.max_queue_len, len(self._queue))
        return req

    def release(self, req: Request) -> None:
        """Return a previously granted slot; wakes the next waiter."""
        try:
            self._users.remove(req)
        except ValueError:
            raise RuntimeError(
                f"release of {req!r} which does not hold {self.name!r}")
        if not self._users and self._busy_since is not None:
            self.busy_time += self.sim.now - self._busy_since
            self._busy_since = None
        if self._queue:
            nxt = self._queue.popleft()
            rec = self.sim.recorder
            if rec is not None and nxt.owner is not None:
                # The released slot is what the next waiter was blocked on:
                # a contention edge from the releasing op to the granted one.
                rec.contention(nxt.owner, req.owner, self.name)
            self._grant(nxt)

    def _grant(self, req: Request) -> None:
        self._users.append(req)
        self.grant_count += 1
        if self._busy_since is None:
            self._busy_since = self.sim.now
        req.trigger(req)

    # -- convenience ---------------------------------------------------------

    def use(self, duration: float, tag: Any = None) -> Generator:
        """Generator helper: hold one slot for *duration* virtual seconds.

        Usage inside a process::

            yield from link.use(bytes / bandwidth)
        """
        req = self.request(tag=tag)
        yield req
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release(req)

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of time the resource was occupied, up to *horizon*."""
        end = horizon if horizon is not None else self.sim.now
        busy = self.busy_time
        if self._busy_since is not None:
            busy += end - self._busy_since
        return busy / end if end > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<Resource {self.name!r} {self.in_use}/{self.capacity} "
                f"queued={self.queue_len}>")
