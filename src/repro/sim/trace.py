"""Trace recording and analysis — the reproduction's stand-in for ``nsys``.

Every device operation (H2D/D2H memcpy, kernel) and host task records a
:class:`TraceEvent` with its lane (``device:engine``), start and end times.
:class:`TraceAnalysis` then answers the questions the paper asks of its nsys
traces:

* Fig. 3: is the execution dominated by memory transfers or by kernels?
* Fig. 4: are kernels interleaved with transfers from a different buffer?
  how often do computation and transfer actually overlap?  do transfers
  ever overlap each other?

Exporters produce Chrome-trace JSON (loadable in ``chrome://tracing`` /
Perfetto) and a plain ASCII timeline for terminals.
"""

from __future__ import annotations

import json
from typing import (Any, Dict, Iterable, List, NamedTuple, Optional,
                    Sequence, Tuple)

# Event categories
H2D = "h2d"
D2H = "d2h"
KERNEL = "kernel"
HOST = "host"

_CATEGORIES = (H2D, D2H, KERNEL, HOST)


class TraceEvent(NamedTuple):
    """One completed interval on one lane of the simulated node.

    A NamedTuple rather than a frozen dataclass: one is built per recorded
    device operation, so construction cost is on the simulator's hot path.
    Callers constructing events directly should pass a fresh ``meta`` dict
    (``Trace.record`` always does).
    """

    category: str
    name: str
    lane: str
    start: float
    end: float
    device: Optional[int] = None
    meta: Dict[str, Any] = {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "TraceEvent") -> bool:
        return self.start < other.end and other.start < self.end


class Trace:
    """Append-only event log with span helpers."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def record(self, category: str, name: str, lane: str, start: float,
               end: float, device: Optional[int] = None,
               **meta: Any) -> Optional[int]:
        """Append an event; returns its index (None when disabled).

        The index is the stable handle the critical-path recorder uses to
        bind causal ops to their trace events.
        """
        if not self.enabled:
            return None
        if category not in _CATEGORIES:
            raise ValueError(f"unknown trace category {category!r}")
        if end < start:
            # Tolerate float round-off from cost arithmetic: clamp to a
            # zero-duration event (rendered one cell wide by to_ascii).
            if start - end <= 1e-12:
                end = start
            else:
                raise ValueError("trace event ends before it starts")
        self.events.append(TraceEvent(category=category, name=name,
                                      lane=lane, start=start, end=end,
                                      device=device, meta=dict(meta)))
        return len(self.events) - 1

    # -- views ----------------------------------------------------------------

    def by_lane(self) -> Dict[str, List[TraceEvent]]:
        lanes: Dict[str, List[TraceEvent]] = {}
        for ev in self.events:
            lanes.setdefault(ev.lane, []).append(ev)
        for evs in lanes.values():
            evs.sort(key=lambda e: (e.start, e.end))
        return lanes

    def by_device(self, device: int) -> List[TraceEvent]:
        evs = [e for e in self.events if e.device == device]
        evs.sort(key=lambda e: (e.start, e.end))
        return evs

    def makespan(self) -> float:
        if not self.events:
            return 0.0
        return max(e.end for e in self.events)

    # -- exporters -------------------------------------------------------------

    def to_chrome_trace(self,
                        extra_records: Optional[Sequence[dict]] = None) -> str:
        """Serialize as Chrome-trace JSON (microsecond timestamps).

        Lanes are assigned tids in deterministic sorted order and each one
        is named with an ``"M"`` metadata record (``thread_name`` +
        ``thread_sort_index``), so Perfetto / chrome://tracing shows
        ``device:engine`` labels instead of bare tids.  *extra_records*
        (e.g. :meth:`repro.obs.spans.SpanRecorder.to_chrome_records`) are
        appended verbatim — they use their own pid, leaving the raw device
        lanes on pid 0.
        """
        lane_ids = {lane: i for i, lane in enumerate(sorted(self.by_lane()))}
        records: List[dict] = [{
            "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
            "args": {"name": "simulated node"},
        }]
        for lane, tid in sorted(lane_ids.items()):
            records.append({"name": "thread_name", "ph": "M", "pid": 0,
                            "tid": tid, "args": {"name": lane}})
            records.append({"name": "thread_sort_index", "ph": "M", "pid": 0,
                            "tid": tid, "args": {"sort_index": tid}})
        for ev in self.events:
            records.append({
                "name": ev.name,
                "cat": ev.category,
                "ph": "X",
                "ts": ev.start * 1e6,
                "dur": ev.duration * 1e6,
                "pid": 0,
                "tid": lane_ids[ev.lane],
                "args": dict(ev.meta, lane=ev.lane),
            })
        if extra_records:
            records.extend(extra_records)
        return json.dumps({"traceEvents": records}, indent=None)

    def to_ascii(self, width: int = 100,
                 t0: Optional[float] = None,
                 t1: Optional[float] = None) -> str:
        """Render lanes as fixed-width character timelines.

        Characters: ``>`` H2D, ``<`` D2H, ``#`` kernel, ``.`` host task,
        space = idle.  Mirrors the green/red/blue convention of the paper's
        Fig. 3.
        """
        lanes = self.by_lane()
        if not lanes:
            return "(empty trace)"
        lo = t0 if t0 is not None else 0.0
        hi = t1 if t1 is not None else self.makespan()
        if hi <= lo:
            hi = lo + 1.0
        span = hi - lo
        glyph = {H2D: ">", D2H: "<", KERNEL: "#", HOST: "."}
        name_w = max(len("lane"), max(len(name) for name in lanes))
        lines = [f"{'lane'.ljust(name_w)} |{'-' * width}| "
                 f"[{lo:.3f}s .. {hi:.3f}s]"]
        for lane in sorted(lanes):
            row = [" "] * width
            for ev in lanes[lane]:
                if ev.end <= lo or ev.start >= hi:
                    continue
                a = int((max(ev.start, lo) - lo) / span * width)
                b = int((min(ev.end, hi) - lo) / span * width)
                b = max(b, a + 1)
                ch = glyph[ev.category]
                for x in range(a, min(b, width)):
                    row[x] = ch
            lines.append(f"{lane.ljust(name_w)} |{''.join(row)}|")
        lines.append("legend: '>' H2D   '<' D2H   '#' kernel   '.' host")
        return "\n".join(lines)


def _merge_intervals(ivs: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Merge possibly-overlapping float intervals into disjoint ones."""
    ivs = sorted((a, b) for a, b in ivs if b > a)
    out: List[Tuple[float, float]] = []
    for a, b in ivs:
        if out and a <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], b))
        else:
            out.append((a, b))
    return out


def _total(ivs: Sequence[Tuple[float, float]]) -> float:
    return sum(b - a for a, b in ivs)


def _intersect(xs: Sequence[Tuple[float, float]],
               ys: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    out: List[Tuple[float, float]] = []
    i = j = 0
    while i < len(xs) and j < len(ys):
        a = max(xs[i][0], ys[j][0])
        b = min(xs[i][1], ys[j][1])
        if b > a:
            out.append((a, b))
        if xs[i][1] < ys[j][1]:
            i += 1
        else:
            j += 1
    return out


class TraceAnalysis:
    """Answers the paper's trace questions quantitatively."""

    def __init__(self, trace: Trace):
        self.trace = trace

    # -- busy fractions (Fig. 3) ------------------------------------------------

    def busy_intervals(self, device: int,
                       categories: Sequence[str]) -> List[Tuple[float, float]]:
        ivs = [(e.start, e.end) for e in self.trace.events
               if e.device == device and e.category in categories]
        return _merge_intervals(ivs)

    def device_summary(self, device: int) -> Dict[str, float]:
        """Per-device busy time split by category plus the makespan."""
        out: Dict[str, float] = {"makespan": self.trace.makespan()}
        for cat in (H2D, D2H, KERNEL):
            out[cat] = _total(self.busy_intervals(device, [cat]))
        out["transfer"] = out[H2D] + out[D2H]
        return out

    def transfer_dominance(self, devices: Sequence[int]) -> Dict[str, float]:
        """Aggregate transfer vs kernel busy time across *devices*.

        The paper's Fig. 3 conclusion is ``transfer >> kernel``; callers
        assert ``ratio > 1``.
        """
        transfer = kernel = 0.0
        for d in devices:
            s = self.device_summary(d)
            transfer += s["transfer"]
            kernel += s[KERNEL]
        ratio = transfer / kernel if kernel > 0 else float("inf")
        return {"transfer": transfer, "kernel": kernel, "ratio": ratio}

    # -- overlap (Fig. 4) -------------------------------------------------------

    def compute_transfer_overlap(self, device: int) -> float:
        """Seconds during which *device* both computes and transfers."""
        comp = self.busy_intervals(device, [KERNEL])
        xfer = self.busy_intervals(device, [H2D, D2H])
        return _total(_intersect(comp, xfer))

    def wire_intervals(self, device: int) -> List[Tuple[float, float]]:
        """Intervals during which *device*'s transfers occupied the link.

        Transfer events carry ``wire_start``/``wire_end`` meta separating
        link occupancy from host-side API latency; events without the meta
        fall back to their full span.
        """
        ivs = []
        for e in self.trace.events:
            if e.device != device or e.category not in (H2D, D2H):
                continue
            a = e.meta.get("wire_start", e.start)
            b = e.meta.get("wire_end", e.end)
            ivs.append((a, b))
        return _merge_intervals(ivs)

    def transfer_transfer_overlap(self, devices: Sequence[int],
                                  wire_only: bool = True) -> float:
        """Pairwise overlap of transfer time across *devices*.

        With ``wire_only`` (default) only link occupancy counts; on a
        shared FIFO socket link this must be exactly 0 for same-socket
        device pairs — the paper's "transfers from different buffers did
        not overlap".
        """
        total = 0.0
        devs = list(devices)
        for i, a in enumerate(devs):
            for b in devs[i + 1:]:
                if wire_only:
                    xa = self.wire_intervals(a)
                    xb = self.wire_intervals(b)
                else:
                    xa = self.busy_intervals(a, [H2D, D2H])
                    xb = self.busy_intervals(b, [H2D, D2H])
                total += _total(_intersect(xa, xb))
        return total

    def interleave_count(self, device: int) -> int:
        """Number of kernel<->transfer alternations in the device timeline.

        The paper's Fig. 4 shows kernels "interleaved with data transfers
        from a different buffer" — a high alternation count relative to the
        number of kernels.
        """
        evs = self.trace.by_device(device)
        seq = []
        for ev in evs:
            kind = KERNEL if ev.category == KERNEL else "xfer"
            if ev.category == HOST:
                continue
            if not seq or seq[-1] != kind:
                seq.append(kind)
        return max(0, len(seq) - 1)

    def idle_fraction(self, device: int) -> float:
        """Fraction of the makespan the device spends fully idle."""
        span = self.trace.makespan()
        if span <= 0:
            return 0.0
        busy = _total(self.busy_intervals(device, [H2D, D2H, KERNEL]))
        return max(0.0, 1.0 - busy / span)
