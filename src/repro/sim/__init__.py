"""Deterministic discrete-event simulation substrate.

This package plays the role of "the hardware" in the reproduction: a virtual
clock, generator-based processes (the host thread, device copy engines,
device compute engines), FIFO resources (shared host links), a node topology
description, a calibrated cost model, and a trace recorder that stands in for
NVIDIA's ``nsys``.
"""

from repro.sim.engine import (
    Simulator,
    Event,
    Timeout,
    Process,
    AllOf,
    AnyOf,
    Interrupt,
)
from repro.sim.resources import Resource, Request
from repro.sim.topology import (
    DeviceSpec,
    LinkSpec,
    NodeTopology,
    cte_power_node,
    uniform_node,
)
from repro.sim.costmodel import CostModel, TransferCost, KernelCost
from repro.sim.trace import Trace, TraceEvent, TraceAnalysis

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Resource",
    "Request",
    "DeviceSpec",
    "LinkSpec",
    "NodeTopology",
    "cte_power_node",
    "uniform_node",
    "CostModel",
    "TransferCost",
    "KernelCost",
    "Trace",
    "TraceEvent",
    "TraceAnalysis",
]
