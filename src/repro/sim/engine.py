"""A small, deterministic discrete-event simulation engine.

The engine follows the classic process-interaction style (a SimPy-like
subset, implemented from scratch): *processes* are Python generators that
``yield`` :class:`Event` objects and are resumed when those events trigger.
Determinism is guaranteed by a strict ``(time, sequence)`` ordering of the
event heap — two runs of the same program produce identical traces, which the
test suite asserts.

Only virtual time exists here; nothing sleeps.  The OpenMP runtime charges
costs through :mod:`repro.sim.costmodel` and advances this clock.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional


class SimulationError(RuntimeError):
    """Raised for engine-level protocol violations (e.g. yielding a
    non-Event, re-triggering an already triggered event)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; :meth:`trigger` (or :meth:`fail`) moves it to
    *triggered* and schedules its callbacks at the current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    #: causal frontier consumed by repro.obs.critpath — empty for plain
    #: events, so the engine's join hook can skip them with one attribute
    #: read; Process carries a per-instance frontier, AllOf/AnyOf merge
    #: their processed children on access.
    cp_heads = ()

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    # -- state ----------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._value

    # -- transitions ------------------------------------------------------------

    def trigger(self, value: Any = None) -> "Event":
        """Mark the event as succeeded with *value* and enqueue callbacks."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.sim._schedule_event(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Mark the event as failed; waiting processes receive *exc*."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.sim._schedule_event(self)
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self._processed:
            # Late subscription: deliver immediately at current time.
            self.sim._schedule_fn(lambda: cb(self))
        else:
            assert self.callbacks is not None
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers after a fixed virtual delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule_event(self, delay)


class Process(Event):
    """Wraps a generator and drives it through the event loop.

    The process *is* an event: it triggers with the generator's return value
    when the generator finishes, or fails with the escaping exception.
    Other processes can therefore ``yield proc`` to join it.
    """

    __slots__ = ("gen", "name", "work_safe", "san_clock", "prov", "retry",
                 "cp_heads", "_waiting_on", "_interrupts")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "",
                 defer: bool = False):
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        # Race-sanitizer vector clock: a bitmask of the access-record bits
        # this process is ordered after (see repro.analysis.sanitizer).
        # Plain int OR operations; dead weight unless sim.san_hook is set.
        self.san_clock = 0
        # Directive/chunk provenance ``(directive_id, chunk_index,
        # rerouted_from)`` and fault-retry tag, inherited from the spawning
        # process so copy sub-processes keep their parent op's identity.
        # ``cp_heads`` holds the causal frontier (op ids of the most recent
        # completed device ops this process is ordered after) consumed by
        # repro.obs.critpath; empty tuples unless a recorder is attached.
        parent = sim.current_process
        self.prov = parent.prov if parent is not None else None
        self.retry = parent.retry if parent is not None else 0
        self.cp_heads = parent.cp_heads if parent is not None else ()
        # Processes that only *register* deferred real work (device
        # operations) and never observe host arrays inline set this True;
        # resuming any other process closes the current work window so the
        # arrays it may read are up to date (see Simulator.run_work).
        self.work_safe = False
        # Interrupt queue, allocated lazily on the first interrupt() —
        # the overwhelming majority of processes are never interrupted.
        self._interrupts: Optional[Deque[Interrupt]] = None
        # Kick off at the current time.  The shared pre-triggered sentinel
        # stands in for the per-process init event the engine used to
        # allocate; _start() checks it the same way _resume() checks a real
        # wait target, so an interrupt landing before the first step still
        # wins the race.  ``defer=True`` skips the start push so a caller
        # can batch many starts into one heap transaction
        # (see Simulator.schedule_batch); it MUST schedule _start itself.
        self._waiting_on: Optional[Event] = sim._proc_init
        if not defer:
            sim._schedule_fn(self._start)

    @classmethod
    def spawn_task(cls, sim: "Simulator", gen: Generator, name: str,
                   prov) -> "Process":
        """Slim constructor for the macro-replay fast path.

        Builds a deferred, work-safe task process with explicit provenance
        in one pass over the slots — no ``super().__init__`` dispatch, no
        name fallback, no parent ``prov`` read (the caller supplies it).
        ``retry``/``cp_heads`` inherit from the spawning process exactly as
        in ``__init__``; the caller MUST schedule ``_start`` itself (see
        :meth:`Simulator.schedule_batch`).
        """
        self = cls.__new__(cls)
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self.gen = gen
        self.name = name
        self.san_clock = 0
        parent = sim.current_process
        if parent is not None:
            self.retry = parent.retry
            self.cp_heads = parent.cp_heads
        else:
            self.retry = 0
            self.cp_heads = ()
        self.prov = prov
        self.work_safe = True
        self._interrupts = None
        self._waiting_on = sim._proc_init
        return self

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        if self._interrupts is None:
            self._interrupts = deque()
        self._interrupts.append(Interrupt(cause))
        waiting = self._waiting_on
        if waiting is not None:
            self._waiting_on = None
            self.sim._schedule_fn(lambda: self._step(None, None))

    # -- internal --------------------------------------------------------------

    def _start(self) -> None:
        if self._waiting_on is not self.sim._proc_init:
            return  # stale wakeup (process was interrupted before starting)
        self._waiting_on = None
        self._step(None, None)

    def _resume(self, ev: Event) -> None:
        if self._waiting_on is not ev:
            return  # stale wakeup (process was interrupted or finished)
        self._waiting_on = None
        hook = self.sim.san_hook
        if hook is not None:
            hook(self, ev)
        hook = self.sim.cp_hook
        if hook is not None:
            heads = ev.cp_heads
            if heads:
                hook(self, heads)
        if ev.ok:
            self._step(ev.value, None)
        else:
            self._step(None, ev.value)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        self.sim.current_process = self
        if not self.work_safe:
            ex = self.sim._executor
            if ex is not None and ex.pending:
                try:
                    ex.flush()
                except BaseException as err:  # noqa: BLE001
                    # A deferred kernel/copy body failed; deliver it into
                    # the resuming process, where the serial backend would
                    # have surfaced it.
                    value, exc = None, err
        while True:
            try:
                if self._interrupts:
                    intr = self._interrupts.popleft()
                    target = self.gen.throw(intr)
                elif exc is not None:
                    target = self.gen.throw(exc)
                else:
                    target = self.gen.send(value)
            except StopIteration as stop:
                self.trigger(stop.value)
                return
            except BaseException as err:  # noqa: BLE001 - propagate via event
                self.fail(err)
                return
            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded non-Event {target!r}")
                value = None
                continue
            if target._processed:
                # Already fully delivered: continue synchronously.
                hook = self.sim.san_hook
                if hook is not None:
                    hook(self, target)
                hook = self.sim.cp_hook
                if hook is not None:
                    heads = target.cp_heads
                    if heads:
                        hook(self, heads)
                if target._ok:
                    value, exc = target._value, None
                else:
                    value, exc = None, target._value
                continue
            self._waiting_on = target
            target.add_callback(self._resume)
            return


def _merged_child_heads(self) -> List[int]:
    """Causal frontiers of the processed children, concatenated (an AnyOf
    may deliver before its losers are processed; only settled children have
    trustworthy frontiers)."""
    out: List[int] = []
    for ev in self.events:
        if ev._processed:
            heads = ev.cp_heads
            if heads:
                out.extend(heads)
    return out


class AllOf(Event):
    """Triggers when every child event has triggered successfully.

    Fails fast with the first failure.  The value is the list of child
    values in the original order.
    """

    __slots__ = ("events", "_remaining")

    cp_heads = property(_merged_child_heads)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.trigger([])
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.trigger([e.value for e in self.events])


class AnyOf(Event):
    """Triggers as soon as any child triggers (with that child's value)."""

    __slots__ = ("events",)

    cp_heads = property(_merged_child_heads)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self.trigger(None)
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev.ok:
            self.trigger(ev.value)
        else:
            self.fail(ev.value)


class _Call:
    """A bare deferred function on the heap (no Event bookkeeping).

    Internal scheduling (process start, late callbacks, interrupts,
    :meth:`Simulator.schedule_call`) only ever needs "run this at time t";
    pushing a plain callable avoids the Event allocation, its callback
    list, and the processed-state transition on every hot-path launch.
    Each push still consumes exactly one ``seq``, so interleaving with
    real events is byte-identical to the Event-based encoding.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn


class _Batch:
    """Several deferred functions in one heap entry (one transaction).

    The batch occupies a reserved, contiguous ``seq`` range: pushing
    ``[f0, .., fK-1]`` as a batch at seq ``s`` is order-identical to K
    individual :class:`_Call` pushes at seqs ``s..s+K-1`` — no other heap
    entry can hold a seq inside the reserved range (seqs are handed out
    monotonically), and anything a batched fn schedules lands after the
    range, exactly as it would after the corresponding individual push.
    This is the macro-op replay engine's bulk dispatch primitive: a whole
    directive's task starts go on the heap with a single heappush.
    """

    __slots__ = ("fns",)

    def __init__(self, fns):
        self.fns = fns


class Simulator:
    """The event loop: a heap of ``(time, seq, event)`` entries.

    ``seq`` is a monotonically increasing counter that makes simultaneous
    events fire in scheduling order, which is what makes the whole stack
    deterministic.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[tuple] = []
        self._seq = 0
        self._running = False
        # Optional parallel host backend (repro.sim.executor.HostExecutor).
        # The engine never imports it: anything with submit/flush/pending
        # works, which keeps this module free of NumPy and pool concerns.
        self._executor: Any = None
        # Optional race-sanitizer join hook: called as hook(process, event)
        # whenever a process receives a completed event, so the sanitizer
        # can merge the event's clock into the process (happens-before
        # join).  None keeps the hot path untouched.
        self.san_hook: Optional[Callable[["Process", Event], None]] = None
        # Optional critical-path join hook (repro.obs.critpath): same call
        # sites as san_hook, merges causal frontiers across joins.
        self.cp_hook: Optional[Callable[["Process", Event], None]] = None
        # Optional causal recorder (repro.obs.critpath.CausalRecorder):
        # devices and resources report op begin/end and contention grants
        # through it.  None keeps every hot path untouched.
        self.recorder: Any = None
        # The process currently being stepped; lets spawned sub-processes
        # inherit provenance and lets devices tag trace events with the
        # issuing process's directive/chunk/retry identity.
        self.current_process: Optional["Process"] = None
        # Shared already-processed event used as every Process's initial
        # wait target (see Process.__init__ / Process._start).
        self._proc_init = Event(self)
        self._proc_init._triggered = True
        self._proc_init._processed = True
        self._proc_init.callbacks = None

    # -- scheduling ------------------------------------------------------------

    def _schedule_event(self, ev: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, ev))

    def _schedule_fn(self, fn: Callable[[], None], delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, _Call(fn)))

    def schedule_call(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn* after *delay* virtual seconds."""
        self._schedule_fn(fn, delay)

    def schedule_batch(self, fns: List[Callable[[], None]]) -> None:
        """Run *fns* in order at the current time, in ONE heap transaction.

        Reserves a contiguous sequence range of ``len(fns)`` and pushes a
        single :class:`_Batch` entry at the range's first seq, which is
        observably identical to ``len(fns)`` individual ``_schedule_fn``
        pushes (see :class:`_Batch`) while costing one heappush.
        """
        n = len(fns)
        if n == 0:
            return
        if n == 1:
            self._schedule_fn(fns[0])
            return
        seq = self._seq + 1
        self._seq = seq + n - 1
        heapq.heappush(self._heap, (self.now, seq, _Batch(fns)))

    # -- real (host) work -------------------------------------------------------

    @property
    def executor(self) -> Any:
        """The attached parallel host backend, or None (serial)."""
        return self._executor

    def set_executor(self, executor: Any) -> None:
        """Attach a :class:`repro.sim.executor.HostExecutor` (or None)."""
        self._executor = executor
        if executor is not None:
            executor.sim = self

    def run_work(self, fn: Callable[[], None], accesses: Any = None,
                 name: str = "") -> None:
        """Execute real host work attached to the current simulated op.

        With no executor attached this is exactly ``fn()`` — the serial
        backend.  With one, *fn* is deferred into the current epoch window;
        *accesses* is the work item's access set (or a zero-argument
        callable producing it, evaluated only on this path, so the serial
        hot path pays nothing for access extraction).
        """
        ex = self._executor
        if ex is None:
            fn()
            return
        if getattr(ex, "inline_all", False):
            # Nothing ever crosses the pool under an inline-all floor, so
            # don't even evaluate the accesses thunk — extraction would be
            # pure overhead on every op.
            fn()
            ex.inline_small_ops += 1
            return
        ex.submit(fn, accesses() if callable(accesses) else accesses, name)

    def flush_work(self) -> None:
        """Force any deferred real work to execute now."""
        ex = self._executor
        if ex is not None and ex.pending:
            ex.flush()

    # -- factories -------------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------------

    def step(self) -> None:
        """Process one entry from the heap."""
        time, _seq, ev = heapq.heappop(self._heap)
        if time < self.now:
            raise SimulationError("time went backwards")
        self.now = time
        if type(ev) is _Call:
            ev.fn()
            self.current_process = None
            return
        if type(ev) is _Batch:
            for fn in ev.fns:
                fn()
                # Match per-_Call semantics: each fn gets a clean slate,
                # as if it had been popped from its own heap entry.
                self.current_process = None
            return
        callbacks = ev.callbacks
        ev.callbacks = None
        ev._processed = True
        if callbacks:
            for cb in callbacks:
                cb(ev)
        self.current_process = None

    def run(self, until: Optional[Event | float] = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        ``until`` may be an :class:`Event` (returns its value, re-raising a
        failure), a float deadline, or None (drain everything).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            if isinstance(until, Event):
                sentinel = until
                while self._heap:
                    if sentinel._processed:
                        break
                    self.step()
                if not sentinel._triggered:
                    raise SimulationError(
                        "run(until=event) exhausted the heap before the "
                        "event triggered (deadlock?)")
                if sentinel.ok:
                    return sentinel.value
                raise sentinel.value
            deadline = float(until) if until is not None else None
            while self._heap:
                t = self._heap[0][0]
                if deadline is not None and t > deadline:
                    self.now = deadline
                    return None
                self.step()
            if deadline is not None:
                self.now = max(self.now, deadline)
            return None
        finally:
            self._running = False
            # Close the work window at the run boundary: whoever called
            # run() is host code and may observe arrays next.
            self.flush_work()

    def peek(self) -> float:
        """Time of the next scheduled event (inf if none)."""
        return self._heap[0][0] if self._heap else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Simulator now={self.now} pending={len(self._heap)}>"
