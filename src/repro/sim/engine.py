"""A small, deterministic discrete-event simulation engine.

The engine follows the classic process-interaction style (a SimPy-like
subset, implemented from scratch): *processes* are Python generators that
``yield`` :class:`Event` objects and are resumed when those events trigger.
Determinism is guaranteed by a bucketed calendar queue with strict FIFO
ordering inside every timestamp bucket — two runs of the same program
produce identical traces, which the test suite asserts.

Only virtual time exists here; nothing sleeps.  The OpenMP runtime charges
costs through :mod:`repro.sim.costmodel` and advances this clock.
"""

from __future__ import annotations

import heapq
from collections import deque
from sys import getrefcount
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional

#: Upper bound on the pooled ``Timeout``/``_Call`` freelists.  Steady-state
#: replay churns through a handful of in-flight entries per op; the cap only
#: exists so a pathological burst cannot pin memory forever.
_POOL_MAX = 1024


class SimulationError(RuntimeError):
    """Raised for engine-level protocol violations (e.g. yielding a
    non-Event, re-triggering an already triggered event)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; :meth:`trigger` (or :meth:`fail`) moves it to
    *triggered* and schedules its callbacks at the current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_processed")

    #: causal frontier consumed by repro.obs.critpath — empty for plain
    #: events, so the engine's join hook can skip them with one attribute
    #: read; Process carries a per-instance frontier, AllOf/AnyOf merge
    #: their processed children on access.
    cp_heads = ()

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._processed = False

    # -- state ----------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value not yet available")
        return self._value

    # -- transitions ------------------------------------------------------------

    def trigger(self, value: Any = None) -> "Event":
        """Mark the event as succeeded with *value* and enqueue callbacks."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        # Inline of sim._schedule_event(self) — trigger is the single
        # hottest enqueue site in the simulator.
        sim = self.sim
        t = sim.now
        sim.events_scheduled += 1
        b = sim._buckets.get(t)
        if b is None:
            sim._buckets[t] = deque((self,))
            heapq.heappush(sim._times, t)
        else:
            b.append(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Mark the event as failed; waiting processes receive *exc*."""
        if self._triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() expects an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.sim._schedule_event(self)
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        if self._processed:
            # Late subscription: deliver immediately at current time.
            self.sim._schedule_fn(lambda: cb(self))
        else:
            assert self.callbacks is not None
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "processed" if self._processed else (
            "triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers after a fixed virtual delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        sim._schedule_event(self, delay)


class Process(Event):
    """Wraps a generator and drives it through the event loop.

    The process *is* an event: it triggers with the generator's return value
    when the generator finishes, or fails with the escaping exception.
    Other processes can therefore ``yield proc`` to join it.
    """

    __slots__ = ("gen", "name", "work_safe", "san_clock", "prov", "retry",
                 "cp_heads", "_waiting_on", "_interrupts")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "",
                 defer: bool = False):
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        # Race-sanitizer vector clock: a bitmask of the access-record bits
        # this process is ordered after (see repro.analysis.sanitizer).
        # Plain int OR operations; dead weight unless sim.san_hook is set.
        self.san_clock = 0
        # Directive/chunk provenance ``(directive_id, chunk_index,
        # rerouted_from)`` and fault-retry tag, inherited from the spawning
        # process so copy sub-processes keep their parent op's identity.
        # ``cp_heads`` holds the causal frontier (op ids of the most recent
        # completed device ops this process is ordered after) consumed by
        # repro.obs.critpath; empty tuples unless a recorder is attached.
        parent = sim.current_process
        self.prov = parent.prov if parent is not None else None
        self.retry = parent.retry if parent is not None else 0
        self.cp_heads = parent.cp_heads if parent is not None else ()
        # Processes that only *register* deferred real work (device
        # operations) and never observe host arrays inline set this True;
        # resuming any other process closes the current work window so the
        # arrays it may read are up to date (see Simulator.run_work).
        self.work_safe = False
        # Interrupt queue, allocated lazily on the first interrupt() —
        # the overwhelming majority of processes are never interrupted.
        self._interrupts: Optional[Deque[Interrupt]] = None
        # Kick off at the current time.  The shared pre-triggered sentinel
        # stands in for the per-process init event the engine used to
        # allocate; _start() checks it the same way _resume() checks a real
        # wait target, so an interrupt landing before the first step still
        # wins the race.  ``defer=True`` skips the start push so a caller
        # can batch many starts into one queue transaction
        # (see Simulator.schedule_batch); it MUST schedule _start itself.
        self._waiting_on: Optional[Event] = sim._proc_init
        if not defer:
            sim._schedule_fn(self._start)

    @classmethod
    def spawn_task(cls, sim: "Simulator", gen: Generator, name: str,
                   prov) -> "Process":
        """Slim constructor for the macro-replay fast path.

        Builds a deferred, work-safe task process with explicit provenance
        in one pass over the slots — no ``super().__init__`` dispatch, no
        name fallback, no parent ``prov`` read (the caller supplies it).
        ``retry``/``cp_heads`` inherit from the spawning process exactly as
        in ``__init__``; the caller MUST schedule ``_start`` itself (see
        :meth:`Simulator.schedule_batch`).
        """
        self = cls.__new__(cls)
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self.gen = gen
        self.name = name
        self.san_clock = 0
        parent = sim.current_process
        if parent is not None:
            self.retry = parent.retry
            self.cp_heads = parent.cp_heads
        else:
            self.retry = 0
            self.cp_heads = ()
        self.prov = prov
        self.work_safe = True
        self._interrupts = None
        self._waiting_on = sim._proc_init
        return self

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            return
        if self._interrupts is None:
            self._interrupts = deque()
        self._interrupts.append(Interrupt(cause))
        waiting = self._waiting_on
        if waiting is not None:
            self._waiting_on = None
            self.sim._schedule_fn(lambda: self._step(None, None))

    # -- internal --------------------------------------------------------------

    def _start(self) -> None:
        if self._waiting_on is not self.sim._proc_init:
            return  # stale wakeup (process was interrupted before starting)
        self._waiting_on = None
        self._step(None, None)

    def _resume(self, ev: Event) -> None:
        if self._waiting_on is not ev:
            return  # stale wakeup (process was interrupted or finished)
        self._waiting_on = None
        hook = self.sim.san_hook
        if hook is not None:
            hook(self, ev)
        hook = self.sim.cp_hook
        if hook is not None:
            heads = ev.cp_heads
            if heads:
                hook(self, heads)
        if ev.ok:
            self._step(ev.value, None)
        else:
            self._step(None, ev.value)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        self.sim.current_process = self
        if not self.work_safe:
            ex = self.sim._executor
            if ex is not None and ex.pending:
                try:
                    ex.flush()
                except BaseException as err:  # noqa: BLE001
                    # A deferred kernel/copy body failed; deliver it into
                    # the resuming process, where the serial backend would
                    # have surfaced it.
                    value, exc = None, err
        while True:
            try:
                if self._interrupts:
                    intr = self._interrupts.popleft()
                    target = self.gen.throw(intr)
                elif exc is not None:
                    target = self.gen.throw(exc)
                else:
                    target = self.gen.send(value)
            except StopIteration as stop:
                self.trigger(stop.value)
                return
            except BaseException as err:  # noqa: BLE001 - propagate via event
                self.fail(err)
                return
            if not isinstance(target, Event):
                exc = SimulationError(
                    f"process {self.name!r} yielded non-Event {target!r}")
                value = None
                continue
            if target._processed:
                # Already fully delivered: continue synchronously.
                hook = self.sim.san_hook
                if hook is not None:
                    hook(self, target)
                hook = self.sim.cp_hook
                if hook is not None:
                    heads = target.cp_heads
                    if heads:
                        hook(self, heads)
                if target._ok:
                    value, exc = target._value, None
                else:
                    value, exc = None, target._value
                continue
            self._waiting_on = target
            target.add_callback(self._resume)
            return


def _merged_child_heads(self) -> List[int]:
    """Causal frontiers of the processed children, concatenated (an AnyOf
    may deliver before its losers are processed; only settled children have
    trustworthy frontiers)."""
    out: List[int] = []
    for ev in self.events:
        if ev._processed:
            heads = ev.cp_heads
            if heads:
                out.extend(heads)
    return out


class AllOf(Event):
    """Triggers when every child event has triggered successfully.

    Fails fast with the first failure.  The value is the list of child
    values in the original order.
    """

    __slots__ = ("events", "_remaining")

    cp_heads = property(_merged_child_heads)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.trigger([])
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.trigger([e.value for e in self.events])


class AnyOf(Event):
    """Triggers as soon as any child triggers (with that child's value)."""

    __slots__ = ("events",)

    cp_heads = property(_merged_child_heads)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self.trigger(None)
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev.ok:
            self.trigger(ev.value)
        else:
            self.fail(ev.value)


class _Call:
    """A bare deferred function in the queue (no Event bookkeeping).

    Internal scheduling (process start, late callbacks, interrupts,
    :meth:`Simulator.schedule_call`) only ever needs "run this at time t";
    pushing a plain callable avoids the Event allocation, its callback
    list, and the processed-state transition on every hot-path launch.
    Instances never escape the engine, so dispatch recycles them through
    ``Simulator._call_pool`` — a warm replay loop allocates none.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn


class _Batch:
    """Several deferred functions in one queue entry (one transaction).

    Inside a timestamp bucket entries run in strict FIFO push order, so
    pushing ``[f0, .., fK-1]`` as one batch entry is order-identical to K
    individual :class:`_Call` pushes made back to back — anything a batched
    fn schedules lands after the batch's slot, exactly as it would after
    the corresponding individual push.  This is the macro-op replay
    engine's bulk dispatch primitive: a whole directive's task starts go
    into the calendar queue with a single push.
    """

    __slots__ = ("fns",)

    def __init__(self, fns):
        self.fns = fns


class Simulator:
    """The event loop: a bucketed calendar queue.

    ``_buckets`` maps a timestamp to the deque of entries scheduled at that
    time; ``_times`` is a heap of the distinct timestamps (an entry lives
    in ``_times`` iff its bucket exists).  Pushes append, pops take from
    the left — simultaneous events fire in scheduling order (FIFO
    tie-break), which is what makes the whole stack deterministic.  The
    run loop drains a whole bucket per dispatch, batching same-timestamp
    callback runs into one heap operation.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._buckets: dict = {}
        self._times: List[float] = []
        self._running = False
        # Freelists for the two entry types the hot path churns through.
        # _Call entries never escape the engine and recycle unconditionally;
        # Timeout events recycle only when the run loop can prove no one
        # still holds a reference (see run()).
        self._call_pool: List[_Call] = []
        self._timeout_pool: List[Timeout] = []
        # Dispatch counters (engine_* metrics; see engine_stats()).
        self.events_scheduled = 0
        self.dispatches = 0
        self.events_dispatched = 0
        #: inert virtual-time segments advanced by fused timeline walkers
        #: (repro.sim.timeline) instead of generator resumes.
        self.fused_segments = 0
        self.timeouts_created = 0
        self.timeouts_reused = 0
        self.calls_created = 0
        self.calls_reused = 0
        # Optional parallel host backend (repro.sim.executor.HostExecutor).
        # The engine never imports it: anything with submit/flush/pending
        # works, which keeps this module free of NumPy and pool concerns.
        self._executor: Any = None
        # Optional race-sanitizer join hook: called as hook(process, event)
        # whenever a process receives a completed event, so the sanitizer
        # can merge the event's clock into the process (happens-before
        # join).  None keeps the hot path untouched.
        self.san_hook: Optional[Callable[["Process", Event], None]] = None
        # Optional critical-path join hook (repro.obs.critpath): same call
        # sites as san_hook, merges causal frontiers across joins.
        self.cp_hook: Optional[Callable[["Process", Event], None]] = None
        # Optional causal recorder (repro.obs.critpath.CausalRecorder):
        # devices and resources report op begin/end and contention grants
        # through it.  None keeps every hot path untouched.
        self.recorder: Any = None
        # The process currently being stepped; lets spawned sub-processes
        # inherit provenance and lets devices tag trace events with the
        # issuing process's directive/chunk/retry identity.
        self.current_process: Optional["Process"] = None
        # Shared already-processed event used as every Process's initial
        # wait target (see Process.__init__ / Process._start).
        self._proc_init = Event(self)
        self._proc_init._triggered = True
        self._proc_init._processed = True
        self._proc_init.callbacks = None

    # -- scheduling ------------------------------------------------------------

    def _push(self, t: float, entry: Any) -> None:
        self.events_scheduled += 1
        b = self._buckets.get(t)
        if b is None:
            self._buckets[t] = deque((entry,))
            heapq.heappush(self._times, t)
        else:
            b.append(entry)

    # _schedule_event/_schedule_fn inline the _push body: together they
    # account for most queue insertions, and the extra call frame is
    # measurable at this volume.

    def _schedule_event(self, ev: Event, delay: float = 0.0) -> None:
        t = self.now + delay
        self.events_scheduled += 1
        b = self._buckets.get(t)
        if b is None:
            self._buckets[t] = deque((ev,))
            heapq.heappush(self._times, t)
        else:
            b.append(ev)

    def _schedule_fn(self, fn: Callable[[], None], delay: float = 0.0) -> None:
        pool = self._call_pool
        if pool:
            c = pool.pop()
            c.fn = fn
            self.calls_reused += 1
        else:
            c = _Call(fn)
            self.calls_created += 1
        t = self.now + delay
        self.events_scheduled += 1
        b = self._buckets.get(t)
        if b is None:
            self._buckets[t] = deque((c,))
            heapq.heappush(self._times, t)
        else:
            b.append(c)

    def schedule_call(self, delay: float, fn: Callable[[], None]) -> None:
        """Run *fn* after *delay* virtual seconds."""
        self._schedule_fn(fn, delay)

    def schedule_batch(self, fns: List[Callable[[], None]]) -> None:
        """Run *fns* in order at the current time, in ONE queue transaction.

        Pushes a single :class:`_Batch` entry, which is observably
        identical to ``len(fns)`` individual ``_schedule_fn`` pushes (see
        :class:`_Batch`) while costing one queue operation.
        """
        n = len(fns)
        if n == 0:
            return
        if n == 1:
            self._schedule_fn(fns[0])
            return
        self._push(self.now, _Batch(fns))
        self.events_scheduled += n - 1  # _push counted one

    # -- real (host) work -------------------------------------------------------

    @property
    def executor(self) -> Any:
        """The attached parallel host backend, or None (serial)."""
        return self._executor

    def set_executor(self, executor: Any) -> None:
        """Attach a :class:`repro.sim.executor.HostExecutor` (or None)."""
        self._executor = executor
        if executor is not None:
            executor.sim = self

    def run_work(self, fn: Callable[[], None], accesses: Any = None,
                 name: str = "") -> None:
        """Execute real host work attached to the current simulated op.

        With no executor attached this is exactly ``fn()`` — the serial
        backend.  With one, *fn* is deferred into the current epoch window;
        *accesses* is the work item's access set (or a zero-argument
        callable producing it, evaluated only on this path, so the serial
        hot path pays nothing for access extraction).
        """
        ex = self._executor
        if ex is None:
            fn()
            return
        if getattr(ex, "inline_all", False):
            # Nothing ever crosses the pool under an inline-all floor, so
            # don't even evaluate the accesses thunk — extraction would be
            # pure overhead on every op.
            fn()
            ex.inline_small_ops += 1
            return
        ex.submit(fn, accesses() if callable(accesses) else accesses, name)

    def flush_work(self) -> None:
        """Force any deferred real work to execute now."""
        ex = self._executor
        if ex is not None and ex.pending:
            ex.flush()

    # -- factories -------------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise SimulationError(f"negative timeout delay {delay!r}")
            t = pool.pop()
            t.callbacks = []
            t._value = value
            t._ok = True
            t._triggered = True
            t._processed = False
            t.delay = delay
            when = self.now + delay
            self.events_scheduled += 1
            b = self._buckets.get(when)
            if b is None:
                self._buckets[when] = deque((t,))
                heapq.heappush(self._times, when)
            else:
                b.append(t)
            self.timeouts_reused += 1
            return t
        self.timeouts_created += 1
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution -------------------------------------------------------------

    def _dispatch(self, ev: Any) -> None:
        """Deliver one popped entry (shared by step(); run() inlines this)."""
        self.events_dispatched += 1
        if type(ev) is _Call:
            fn = ev.fn
            ev.fn = None
            if len(self._call_pool) < _POOL_MAX:
                self._call_pool.append(ev)
            fn()
            self.current_process = None
            return
        if type(ev) is _Batch:
            for fn in ev.fns:
                fn()
                # Match per-_Call semantics: each fn gets a clean slate,
                # as if it had been popped from its own queue entry.
                self.current_process = None
            return
        callbacks = ev.callbacks
        ev.callbacks = None
        ev._processed = True
        if callbacks:
            for cb in callbacks:
                cb(ev)
        self.current_process = None

    def step(self) -> None:
        """Process one entry from the calendar queue."""
        t = self._times[0]
        if t < self.now:
            raise SimulationError("time went backwards")
        self.now = t
        b = self._buckets[t]
        ev = b.popleft()
        if not b:
            del self._buckets[t]
            heapq.heappop(self._times)
        self.dispatches += 1
        self._dispatch(ev)

    def run(self, until: Optional[Event | float] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be an :class:`Event` (returns its value, re-raising a
        failure), a float deadline, or None (drain everything).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        times = self._times
        buckets = self._buckets
        call_pool = self._call_pool
        timeout_pool = self._timeout_pool
        try:
            sentinel = until if isinstance(until, Event) else None
            deadline = None
            if sentinel is None and until is not None:
                deadline = float(until)
            # The two loops below are the engine's hottest code: a whole
            # timestamp bucket drains per heap operation, with the entry
            # dispatch inlined (no per-entry method call).  _Call entries
            # are engine-internal and recycle unconditionally; a Timeout
            # recycles only when, after its callbacks ran, this frame holds
            # the sole remaining reference (waiters clear _waiting_on
            # before stepping; AllOf children, run(until=timeout)
            # sentinels and user-held handles keep a ref and skip the
            # pool).  getrefcount(ev) == 2 counts exactly this frame's
            # local plus getrefcount's own argument.
            while times:
                if sentinel is not None and sentinel._processed:
                    break
                t = times[0]
                if deadline is not None and t > deadline:
                    self.now = deadline
                    return None
                if t < self.now:
                    raise SimulationError("time went backwards")
                self.now = t
                b = buckets[t]
                self.dispatches += 1
                while b:
                    if sentinel is not None and sentinel._processed:
                        break
                    ev = b.popleft()
                    self.events_dispatched += 1
                    tp = type(ev)
                    if tp is _Call:
                        fn = ev.fn
                        ev.fn = None
                        if len(call_pool) < _POOL_MAX:
                            call_pool.append(ev)
                        fn()
                        self.current_process = None
                        continue
                    if tp is _Batch:
                        for fn in ev.fns:
                            fn()
                            self.current_process = None
                        continue
                    callbacks = ev.callbacks
                    ev.callbacks = None
                    ev._processed = True
                    if callbacks:
                        for cb in callbacks:
                            cb(ev)
                    self.current_process = None
                    if tp is Timeout and len(timeout_pool) < _POOL_MAX \
                            and getrefcount(ev) == 2:
                        timeout_pool.append(ev)
                if not b:
                    del buckets[t]
                    heapq.heappop(times)
            if sentinel is not None:
                if not sentinel._triggered:
                    raise SimulationError(
                        "run(until=event) exhausted the queue before the "
                        "event triggered (deadlock?)")
                if sentinel.ok:
                    return sentinel.value
                raise sentinel.value
            if deadline is not None:
                self.now = max(self.now, deadline)
            return None
        finally:
            self._running = False
            # Close the work window at the run boundary: whoever called
            # run() is host code and may observe arrays next.
            self.flush_work()

    def engine_stats(self) -> dict:
        """Dispatch/allocation counters for the engine_* metrics."""
        d = self.dispatches
        return {
            "events_scheduled": self.events_scheduled,
            "dispatches": d,
            "events_dispatched": self.events_dispatched,
            "fused_segments": self.fused_segments,
            "mean_batch": (self.events_dispatched / d) if d else 0.0,
            "timeouts_created": self.timeouts_created,
            "timeouts_reused": self.timeouts_reused,
            "calls_created": self.calls_created,
            "calls_reused": self.calls_reused,
        }

    def peek(self) -> float:
        """Time of the next scheduled event (inf if none)."""
        return self._times[0] if self._times else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pending = sum(len(b) for b in self._buckets.values())
        return f"<Simulator now={self.now} pending={pending}>"
