"""Cost model: how long transfers and kernels take on the simulated node.

The model is deliberately mechanistic rather than curve-fitted: the same
three ingredients the paper identifies as performance-relevant are charged
explicitly —

* **per-call latency** on every memcpy the runtime issues (the paper notes
  12 sequential CUDA memcpy calls per mapped chunk: 4 variables × 3 grids);
* **bytes / link-bandwidth** occupancy on the socket's shared host link;
* **kernel time** derived from iteration count and the intra-device
  parallelism actually requested (teams × threads, SIMD), saturating at the
  device's peak.

``scale`` decouples functional array sizes from accounted sizes: the Somier
benchmark runs a 192³ grid but charges costs as if it were the paper's 1200³
(scale = (1200/192)³), so buffer/chunk ratios, virtual capacities and the
virtual clock all match the paper's regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Tuple

import numpy as np

from repro.sim.topology import DeviceSpec, LinkSpec, NetworkLinkSpec


class TransferCost(NamedTuple):
    """Breakdown of one host<->device memcpy.

    A NamedTuple rather than a dataclass: one is built per memcpy section,
    which puts construction cost on the simulator's hot path.
    """

    bytes: float
    latency: float
    wire_time: float

    @property
    def total(self) -> float:
        return self.latency + self.wire_time


class KernelCost(NamedTuple):
    """Breakdown of one kernel launch on one device."""

    iterations: float
    launch_latency: float
    compute_time: float

    @property
    def total(self) -> float:
        return self.launch_latency + self.compute_time


@dataclass
class CostModel:
    """Charges virtual time for device operations.

    ``scale`` multiplies both byte counts and iteration counts so that a
    small functional problem stands in for the paper's full-size one.
    ``work_per_iter`` expresses the kernel's arithmetic intensity relative
    to the simple-kernel throughput baseline of :class:`DeviceSpec` (the
    Somier forces stencil passes ~3, the pointwise kernels ~1).
    """

    scale: float = 1.0
    host_task_overhead: float = 2e-6

    # -- transfers -----------------------------------------------------------

    def transfer(self, link: LinkSpec, nbytes: float) -> TransferCost:
        """Cost of one memcpy of *nbytes* functional bytes over *link*."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        virtual = nbytes * self.scale
        wire = virtual / link.bandwidth_bytes_per_s
        return TransferCost(bytes=virtual,
                            latency=link.per_call_latency,
                            wire_time=wire)

    def network_transfer(self, link: NetworkLinkSpec,
                         nbytes: float) -> TransferCost:
        """Cost of one inter-node message of *nbytes* functional bytes.

        Shares the :class:`TransferCost` shape with :meth:`transfer` so
        the engine charges the hop the same way (latency, then wire time
        while the node's network resource is held).
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        virtual = nbytes * self.scale
        wire = virtual / link.bandwidth_bytes_per_s
        return TransferCost(bytes=virtual,
                            latency=link.per_message_latency,
                            wire_time=wire)

    def virtual_bytes(self, nbytes: float) -> float:
        """Functional byte count -> accounted (virtual) byte count."""
        return nbytes * self.scale

    # -- kernels --------------------------------------------------------------

    def kernel(self, device: DeviceSpec, iterations: float,
               num_teams: int | None = None,
               threads_per_team: int | None = None,
               simd: bool = True,
               work_per_iter: float = 1.0) -> KernelCost:
        """Cost of a kernel covering *iterations* loop iterations.

        The effective parallelism is ``teams × threads`` (each default to
        saturating the device), multiplied by the SIMD width when ``simd``
        holds, and capped at the device's maximum concurrency.  Throughput
        scales linearly with effective parallelism below saturation — this
        is what gives the paper's "near to linear" kernel speedup when the
        same total work is split over more devices.
        """
        if iterations < 0:
            raise ValueError("negative iteration count")
        virtual_iters = iterations * self.scale
        max_par = device.max_parallelism
        if num_teams is None and threads_per_team is None:
            parallelism = max_par
        else:
            teams = num_teams if num_teams is not None else device.num_sms
            threads = (threads_per_team if threads_per_team is not None
                       else device.max_threads_per_sm)
            parallelism = min(teams * threads, max_par)
        if not simd:
            parallelism = max(1, parallelism // device.simd_width)
        parallelism = max(1, parallelism)
        saturation = parallelism / max_par
        throughput = device.iters_per_second * min(1.0, saturation)
        compute = virtual_iters * work_per_iter / throughput
        return KernelCost(iterations=virtual_iters,
                          launch_latency=device.kernel_launch_latency,
                          compute_time=compute)

    def kernel_batch(self, device: DeviceSpec, bounds,
                     num_teams: int | None = None,
                     threads_per_team: int | None = None,
                     simd: bool = True,
                     work_per_iter: float = 1.0
                     ) -> Tuple[List[float], List[float]]:
        """Vectorized :meth:`kernel` over an ``(n, 2)`` array of chunk
        bounds on one device, for the fused-timeline compiler.

        Returns ``(virtual_iters, totals)`` as plain Python floats.  The
        effective parallelism and throughput are scalars shared by the
        whole batch; the per-record arithmetic runs elementwise in float64
        with the exact operation order of the scalar path, so every entry
        is bit-identical to the ``KernelCost`` the generator path computes.
        """
        bounds = np.asarray(bounds, dtype=np.int64)
        iterations = (bounds[:, 1] - bounds[:, 0]).astype(np.float64)
        if iterations.size and iterations.min() < 0:
            raise ValueError("negative iteration count")
        virtual_iters = iterations * self.scale
        max_par = device.max_parallelism
        if num_teams is None and threads_per_team is None:
            parallelism = max_par
        else:
            teams = num_teams if num_teams is not None else device.num_sms
            threads = (threads_per_team if threads_per_team is not None
                       else device.max_threads_per_sm)
            parallelism = min(teams * threads, max_par)
        if not simd:
            parallelism = max(1, parallelism // device.simd_width)
        parallelism = max(1, parallelism)
        saturation = parallelism / max_par
        throughput = device.iters_per_second * min(1.0, saturation)
        compute = virtual_iters * work_per_iter / throughput
        totals = device.kernel_launch_latency + compute
        return virtual_iters.tolist(), totals.tolist()
