"""The parallel host execution backend: real work on a real worker pool.

The discrete-event engine owns virtual time, event ordering and the trace;
what it does *not* need to own is the real NumPy computation attached to the
simulated operations — kernel bodies and the memcpy payloads.  NumPy
releases the GIL for array operations, so chunks that the paper runs on
four V100s can run their functional work on four host threads here, exactly
the worker-per-device execution model of multi-GPU runtimes (JACC, the
OpenMP 5.1 GPU runtimes), without perturbing the simulation.

The contract:

* **Decide/trace vs do.**  The device layer performs all *decisions*
  (costs, queueing, present-table bookkeeping, trace records) inline as
  before, and hands the *real work* — ``spec.run`` bodies, snapshot/commit
  ``np.copyto`` payloads — to :meth:`Simulator.run_work` as a plain
  callable plus an access set.
* **Epoch windows.**  Deferred items accumulate while device-operation
  processes run; the engine closes the window (flushes) before any host
  task resumes, at run boundaries, and at a pending-size cap.  Within a
  window the items are grouped into *waves*: a new item joins the earliest
  wave it does not interfere with, and interfering items land in strictly
  later waves — so every conflicting pair still executes in registration
  order, which is the serial execution order.
* **Non-interference proof.**  Each access is the byte interval of one
  array section (axis-0 slices of C-contiguous arrays are contiguous, so
  the spread section arithmetic maps 1:1 to disjoint byte intervals,
  compared with :class:`repro.util.intervals.Interval`).  Two items
  interfere iff some access pair overlaps and at least one side writes.
  An item whose accesses cannot be proven (``None``) is a barrier: it
  interferes with everything and executes inline.
* **Determinism.**  A wave is mutually non-interfering, so its items
  commute bit-for-bit; conflicting items are ordered; nothing here touches
  the simulator.  Traces, task names and final arrays are identical to the
  serial backend (``tests/somier/test_parallel_backend.py`` asserts it).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.util import envknobs
from repro.util.intervals import Interval, batch_overlap_matrix

EXECUTOR_EPOCH = "executor_epoch"  # re-exported by repro.obs.tool

#: Flush automatically once this many items are pending (bounds how long
#: snapshot buffers and their references are retained).
DEFAULT_MAX_PENDING = 1024

#: ``min_bytes`` value meaning "inline everything" — no op is big enough to
#: cross the pool boundary.  The default on single-core hosts, where the
#: pool can only lose.
INLINE_ALL_BYTES = 1 << 62

#: Default bytes-per-op floor on multi-core hosts: ops touching less than
#: 1 MiB run inline (thread handoff + GIL churn costs more than the pool
#: can recover on such ops — BENCH_wallclock's workers sweep was *inverted*
#: before this floor existed).
DEFAULT_MULTICORE_MIN_BYTES = 1 << 20

#: Total packed accesses in a wave before interference checks switch from
#: the scalar pair loop to the vectorized batch predicate.
_VECTORIZE_MIN_ACCESSES = 16


def resolve_executor_min_bytes(min_bytes: Optional[int] = None) -> int:
    """Normalize the bytes-per-op inline floor.

    ``None`` consults ``REPRO_EXECUTOR_MIN_BYTES``; with that unset the
    default is machine-aware: inline-everything on single-core hosts,
    :data:`DEFAULT_MULTICORE_MIN_BYTES` otherwise.  ``0`` disables the
    floor (every op crosses the pool, the pre-floor behaviour).
    """
    if min_bytes is None:
        min_bytes = envknobs.env_int("REPRO_EXECUTOR_MIN_BYTES")
        if min_bytes is None:
            cores = os.cpu_count() or 1
            return INLINE_ALL_BYTES if cores <= 1 \
                else DEFAULT_MULTICORE_MIN_BYTES
    if isinstance(min_bytes, bool) or not isinstance(min_bytes, int):
        raise ValueError(
            f"executor min_bytes must be an integer, got {min_bytes!r}")
    if min_bytes < 0:
        raise ValueError(
            f"executor min_bytes must be >= 0, got {min_bytes}")
    return min_bytes


class Access:
    """One byte-interval access of a work item (read or write)."""

    __slots__ = ("interval", "write")

    def __init__(self, interval: Interval, write: bool):
        self.interval = interval
        self.write = write

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Access {'W' if self.write else 'R'} {self.interval!r}>"


def array_interval(arr: np.ndarray) -> Optional[Interval]:
    """The byte interval *arr* occupies, or None if it cannot be proven.

    C-contiguous arrays (and axis-0 slices of them — every section the
    mapping layer produces) cover exactly ``[ptr, ptr + nbytes)``.  A
    non-contiguous view is covered conservatively by its owning base
    buffer; anything without a resolvable ndarray base is unknown.
    """
    try:
        if arr.flags["C_CONTIGUOUS"]:
            ptr = arr.__array_interface__["data"][0]
            return Interval(int(ptr), int(ptr) + int(arr.nbytes))
        base = arr
        while isinstance(base.base, np.ndarray):
            base = base.base
        if not base.flags["C_CONTIGUOUS"]:
            return None
        ptr = base.__array_interface__["data"][0]
        return Interval(int(ptr), int(ptr) + int(base.nbytes))
    except (AttributeError, TypeError, KeyError):
        return None


def array_access(arr: np.ndarray, write: bool) -> Optional[Access]:
    iv = array_interval(arr)
    return Access(iv, write) if iv is not None else None


def collect_accesses(reads: Iterable[np.ndarray] = (),
                     writes: Iterable[np.ndarray] = (),
                     ) -> Optional[Tuple[Access, ...]]:
    """Build an access set; None (unknown → inline barrier) if any array
    cannot be proven."""
    out: List[Access] = []
    for arr in reads:
        acc = array_access(arr, write=False)
        if acc is None:
            return None
        out.append(acc)
    for arr in writes:
        acc = array_access(arr, write=True)
        if acc is None:
            return None
        out.append(acc)
    return tuple(out)


def env_accesses(*envs: Any) -> Optional[Tuple[Access, ...]]:
    """Conservative access set of a kernel environment.

    Every array reachable from the env mappings — raw ndarrays and
    ``GlobalView``-style wrappers exposing a ``buffer`` ndarray — is
    treated as written (write ⊇ read for interference).  Scalars are
    ignored.  Kernel bodies must touch arrays only through their env,
    which is already the :class:`~repro.device.kernel.KernelSpec`
    contract.
    """
    arrays: List[np.ndarray] = []
    for env in envs:
        if env is None:
            continue
        for value in env.values():
            buf = getattr(value, "buffer", value)
            if isinstance(buf, np.ndarray):
                arrays.append(buf)
    return collect_accesses(writes=arrays)


class WorkItem:
    """One deferred unit of real work."""

    __slots__ = ("fn", "accesses", "name", "conflicted")

    def __init__(self, fn: Callable[[], None],
                 accesses: Optional[Sequence[Access]], name: str):
        self.fn = fn
        self.accesses = accesses
        self.name = name
        #: placement was constrained by interference with an earlier item
        self.conflicted = False


def _interferes(a: Optional[Sequence[Access]],
                b: Optional[Sequence[Access]]) -> bool:
    if a is None or b is None:
        return True  # unproven accesses act as a barrier
    for x in a:
        for y in b:
            if (x.write or y.write) and x.interval.overlaps(y.interval):
                return True
    return False


def _pack_accesses(accesses: Sequence[Access]) -> Tuple[np.ndarray, np.ndarray]:
    """Pack an access list to ``((n, 2) bounds, (n,) write-mask)`` arrays."""
    n = len(accesses)
    bounds = np.empty((n, 2), dtype=np.int64)
    writes = np.empty(n, dtype=bool)
    for i, a in enumerate(accesses):
        iv = a.interval
        bounds[i, 0] = iv.start
        bounds[i, 1] = iv.stop
        writes[i] = a.write
    return bounds, writes


class _WaveIndex:
    """Incrementally packed access bounds of one wave.

    Lets the wave-placement scan in :meth:`HostExecutor.submit` run the
    interference predicate as one vectorized array expression once a wave
    accumulates enough accesses; small waves keep the scalar pair loop
    (which is faster below the NumPy call overhead).  Both give identical
    answers — ``tests/sim/test_executor.py`` cross-checks them.
    """

    __slots__ = ("barrier", "count", "_fresh", "_bounds", "_writes")

    def __init__(self) -> None:
        self.barrier = False  # wave holds an item with unproven accesses
        self.count = 0
        self._fresh: List[Sequence[Access]] = []
        self._bounds: Optional[np.ndarray] = None
        self._writes: Optional[np.ndarray] = None

    def add(self, item: "WorkItem") -> None:
        if item.accesses is None:
            self.barrier = True
        elif item.accesses:
            self.count += len(item.accesses)
            self._fresh.append(item.accesses)

    def packed(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._fresh:
            bounds = [] if self._bounds is None else [self._bounds]
            writes = [] if self._writes is None else [self._writes]
            for accs in self._fresh:
                b, w = _pack_accesses(accs)
                bounds.append(b)
                writes.append(w)
            self._fresh = []
            self._bounds = bounds[0] if len(bounds) == 1 \
                else np.concatenate(bounds)
            self._writes = writes[0] if len(writes) == 1 \
                else np.concatenate(writes)
        return self._bounds, self._writes


class HostExecutor:
    """Wave-scheduled thread-pool backend behind one :class:`Simulator`.

    ``workers`` is the pool width; the pool itself is created lazily on
    the first multi-item wave, so a run with no exploitable parallelism
    never starts a thread.  ``tools`` (a
    :class:`~repro.obs.tool.ToolRegistry`) receives one
    ``executor_epoch`` callback per executed wave.
    """

    def __init__(self, workers: int, tools: Any = None,
                 max_pending: int = DEFAULT_MAX_PENDING,
                 min_bytes: int = 0):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.tools = tools
        self.max_pending = max_pending
        #: bytes-per-op floor: a provable op touching fewer bytes runs
        #: inline at submit instead of joining the pending window.  The
        #: constructor default is 0 (no floor, the historical behaviour);
        #: the runtime layer resolves the machine-aware default via
        #: :func:`resolve_executor_min_bytes`.
        self.min_bytes = min_bytes
        #: min_bytes so large that no op ever crosses the pool — lets the
        #: engine skip access extraction entirely (see Simulator.run_work)
        self.inline_all = min_bytes >= INLINE_ALL_BYTES
        self.sim: Any = None  # set by Simulator.set_executor
        self._waves: List[List[WorkItem]] = []
        self._indices: List[_WaveIndex] = []
        self.pending = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        # cumulative statistics (mirrored into metrics via the tool event)
        self.epochs = 0
        self.parallel_ops = 0
        self.serial_ops = 0
        self.inline_fallbacks = 0
        self.inline_small_ops = 0
        self.inline_small_bytes = 0
        self.busy_seconds = 0.0
        self.span_seconds = 0.0

    # -- registration -----------------------------------------------------------

    def submit(self, fn: Callable[[], None],
               accesses: Optional[Sequence[Access]],
               name: str = "") -> None:
        """Defer *fn*; it joins the earliest wave it does not interfere
        with, strictly after the last wave it does.

        Ops below the ``min_bytes`` floor never enter the window: they run
        inline right here (after draining the window if anything pending
        interferes, so conflicting pairs keep registration order).  Small
        ops lose more to thread handoff than the pool recovers.
        """
        min_bytes = self.min_bytes
        if min_bytes and accesses is not None:
            size = 0
            for a in accesses:
                iv = a.interval
                if iv.stop > iv.start:
                    size += iv.stop - iv.start
            if size < min_bytes:
                if self.pending:
                    for wave in self._waves:
                        if any(_interferes(accesses, other.accesses)
                               for other in wave):
                            self.flush()
                            break
                fn()
                self.inline_small_ops += 1
                self.inline_small_bytes += size
                return
        item = WorkItem(fn, accesses, name)
        waves = self._waves
        indices = self._indices
        packed = None
        last_conflict = -1
        for i in range(len(waves) - 1, -1, -1):
            idx = indices[i]
            if accesses is None or idx.barrier:
                hit = True
            elif idx.count >= _VECTORIZE_MIN_ACCESSES:
                if packed is None:
                    packed = _pack_accesses(accesses)
                wave_bounds, wave_writes = idx.packed()
                overlap = batch_overlap_matrix(packed[0], wave_bounds)
                hit = bool((overlap & (packed[1][:, None]
                                       | wave_writes[None, :])).any())
            else:
                hit = any(_interferes(accesses, other.accesses)
                          for other in waves[i])
            if hit:
                last_conflict = i
                break
        if last_conflict >= 0:
            item.conflicted = True
        target = last_conflict + 1
        if target == len(waves):
            waves.append([item])
            indices.append(_WaveIndex())
        else:
            waves[target].append(item)
        indices[target].add(item)
        self.pending += 1
        if self.pending >= self.max_pending:
            self.flush()

    # -- execution --------------------------------------------------------------

    def flush(self) -> None:
        """Run every pending wave, in order; empties the window.

        A failing wave does not abort the flush: every already-registered
        item still executes (matching what the pool would have done had
        the failure landed last), the window ends empty, and the *first*
        error is re-raised once no work is left behind — so the executor
        stays usable for subsequent ``submit`` calls.
        """
        if not self.pending:
            return
        waves, self._waves = self._waves, []
        self._indices = []
        self.pending = 0
        first_error: Optional[BaseException] = None
        for wave in waves:
            try:
                self._run_wave(wave)
            except BaseException as err:  # noqa: BLE001 - re-raise first
                if first_error is None:
                    first_error = err
        if first_error is not None:
            raise first_error

    def _run_wave(self, wave: List[WorkItem]) -> None:
        """Execute one wave; every item runs (and every future is awaited)
        even when one raises, the epoch is counted exactly once, and the
        first error is re-raised only after the bookkeeping settled."""
        t0 = time.perf_counter()
        busy = 0.0
        first_error: Optional[BaseException] = None
        if len(wave) > 1 and self.workers > 1:
            mode = "parallel"
            inline = 0
            pool = self._ensure_pool()
            futures = [pool.submit(self._timed, item) for item in wave]
            for fut in futures:
                try:
                    busy += fut.result()
                except BaseException as err:  # noqa: BLE001 - re-raise first
                    if first_error is None:
                        first_error = err
            self.parallel_ops += len(wave)
        else:
            mode = "serial"
            for item in wave:
                try:
                    busy += self._timed(item)
                except BaseException as err:  # noqa: BLE001 - re-raise first
                    if first_error is None:
                        first_error = err
            self.serial_ops += len(wave)
            # an op alone in its wave *because of* interference (or
            # unprovable accesses) is a forced inline fallback; a lone
            # straggler op is merely serial
            inline = sum(1 for item in wave
                         if item.conflicted or item.accesses is None)
            self.inline_fallbacks += inline
        self._note_wave(wave, mode, inline, busy, time.perf_counter() - t0)
        if first_error is not None:
            raise first_error

    @staticmethod
    def _timed(item: WorkItem) -> float:
        t0 = time.perf_counter()
        item.fn()
        return time.perf_counter() - t0

    def _note_wave(self, wave: List[WorkItem], mode: str, inline: int,
                   busy: float, span: float) -> None:
        self.epochs += 1
        self.busy_seconds += busy
        self.span_seconds += span
        tools = self.tools
        if tools:
            now = self.sim.now if self.sim is not None else 0.0
            tools.dispatch(EXECUTOR_EPOCH, ops=len(wave), mode=mode,
                           workers=self.workers, inline=inline,
                           busy_s=busy, span_s=span, time=now)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-exec")
        return self._pool

    # -- lifecycle --------------------------------------------------------------

    @property
    def utilization(self) -> float:
        """Cumulative worker utilization over all executed waves."""
        capacity = self.span_seconds * self.workers
        return self.busy_seconds / capacity if capacity > 0 else 0.0

    def shutdown(self) -> None:
        """Flush what is left and stop the pool."""
        self.flush()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<HostExecutor workers={self.workers} pending={self.pending} "
                f"epochs={self.epochs}>")
