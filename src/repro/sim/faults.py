"""Seeded, deterministic fault injection for the simulated device layer.

Real multi-GPU runtimes devote substantial machinery to surviving device
failures (JACC's multi-GPU runtime resubmits failed work; the OpenMP 5.1
portable GPU runtime experience reports retry loops around transfers).
This module provides the *source* of those failures for the simulation: a
:class:`FaultInjector` the device layer consults at the top of every
device operation (H2D/D2H transfer, kernel launch), configured by a small
spec grammar and a seed.

Spec grammar (``--faults`` / ``REPRO_FAULTS``)::

    SPEC    ::= RULE ("," RULE)*
    RULE    ::= CLASS ["@" TARGET] ":" TRIGGER
    CLASS   ::= "h2d" | "d2h" | "transfer" | "kernel" | "device" | "node"
    TRIGGER ::= RATE | "#" COUNT

``transfer`` matches both copy directions; ``device`` marks the whole
device lost (its resident data is gone) at the matching op.  ``node``
marks a whole cluster *node* lost — its ``@TARGET`` selects a node id
(not a device id) and the loss takes down every device the node hosts
(see docs/cluster.md).  A ``RATE`` trigger fires with that probability
at every matching op; a ``#COUNT`` trigger fires exactly once, at the
COUNT-th matching op (1-based) — the deterministic way to place a fault
at a precise site.  Examples::

    transfer:0.01           # 1% of all memcpys fail (then get retried)
    kernel@2:0.05           # 5% of kernel launches on device 2 fail
    device@1:#12            # device 1 dies at its 12th operation
    node@1:#6               # cluster node 1 dies at its 6th operation
    h2d:0.02,device@3:#40   # rules compose; first match wins

Determinism: each rule owns its own :class:`random.Random` seeded from
``(seed, rule index)``, and draws happen inline in simulator processes
whose order is fixed by the engine's ``(time, seq)`` heap — so the same
seed and spec reproduce bit-identical fault placements run after run and
across host worker counts.  A rate of ``0.0`` draws but never fires and
leaves the simulation byte-identical to an uninjected run.

:class:`RetryPolicy` is the companion knob consumed by the OpenMP
runtime's device-op execution: transient faults are retried up to
``max_attempts`` with an exponential backoff charged to *virtual* time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

#: op classes accepted by the spec grammar
OP_CLASSES = ("h2d", "d2h", "transfer", "kernel", "device", "node")

#: op kinds reported by the device layer (`transfer`/`device` match several)
_TRANSFER_OPS = ("h2d", "d2h")


@dataclass(frozen=True)
class FaultRule:
    """One parsed rule: which ops it matches and when it fires.

    Exactly one of ``rate`` / ``count`` is active (``count`` wins when
    set).  ``device=None`` matches every device.
    """

    op_class: str
    device: Optional[int] = None
    rate: float = 0.0
    count: Optional[int] = None

    def matches(self, op: str, device: int, node: int = 0) -> bool:
        if self.op_class == "node":
            # ``@TARGET`` selects the *node* — any op on any of its
            # devices can take the whole node down.
            return self.device is None or node == self.device
        if self.device is not None and device != self.device:
            return False
        if self.op_class == "device":
            return True  # any op on the device can take it down
        if self.op_class == "transfer":
            return op in _TRANSFER_OPS
        return self.op_class == op

    def __str__(self) -> str:
        head = self.op_class
        if self.device is not None:
            head += f"@{self.device}"
        trig = f"#{self.count}" if self.count is not None else f"{self.rate:g}"
        return f"{head}:{trig}"


def parse_fault_spec(spec: str) -> Tuple[FaultRule, ...]:
    """Parse a spec string into rules; raises ``ValueError`` with a
    pointed message on malformed input."""
    rules: List[FaultRule] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        head, sep, trig = part.partition(":")
        if not sep or not trig.strip():
            raise ValueError(
                f"fault rule {part!r}: expected CLASS[@DEVICE]:TRIGGER "
                f"(e.g. transfer:0.01 or device@1:#12)")
        cls, at, dev_text = head.partition("@")
        cls = cls.strip().lower()
        if cls not in OP_CLASSES:
            raise ValueError(
                f"fault rule {part!r}: unknown op class {cls!r} "
                f"(expected one of {'/'.join(OP_CLASSES)})")
        device: Optional[int] = None
        if at:
            try:
                device = int(dev_text)
            except ValueError:
                raise ValueError(
                    f"fault rule {part!r}: device must be an integer, "
                    f"got {dev_text!r}")
            if device < 0:
                raise ValueError(
                    f"fault rule {part!r}: device must be >= 0")
        trig = trig.strip()
        if trig.startswith("#"):
            try:
                count = int(trig[1:])
            except ValueError:
                raise ValueError(
                    f"fault rule {part!r}: count trigger must be #N with "
                    f"integer N, got {trig!r}")
            if count < 1:
                raise ValueError(
                    f"fault rule {part!r}: count trigger must be >= 1")
            rules.append(FaultRule(cls, device, count=count))
        else:
            try:
                rate = float(trig)
            except ValueError:
                raise ValueError(
                    f"fault rule {part!r}: trigger must be a probability "
                    f"or #N count, got {trig!r}")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"fault rule {part!r}: rate must be in [0, 1], "
                    f"got {rate!r}")
            rules.append(FaultRule(cls, device, rate=rate))
    return tuple(rules)


class FaultInjector:
    """Deterministic per-rule fault source the device layer consults.

    ``draw(op, device)`` returns the first rule that fires for this op (or
    None); the *device layer* turns a firing into the matching typed
    exception.  Rule state — match counters and the per-rule RNG stream —
    lives here, so one injector shared by all devices of a runtime yields
    one global deterministic fault schedule.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0):
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = int(seed)
        # String seeding is version-stable and accepts any rule index.
        self._rngs = [random.Random(f"repro-faults:{self.seed}:{i}")
                      for i in range(len(self.rules))]
        self._matches = [0] * len(self.rules)
        self.injected = 0
        self.by_class: Dict[str, int] = {}

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultInjector":
        return cls(parse_fault_spec(spec), seed=seed)

    def draw(self, op: str, device: int,
             node: int = 0) -> Optional[FaultRule]:
        """The first rule firing at this ``(op, device, node)``, or None.

        Rate rules consume one RNG draw per *match* whether or not they
        fire, so rule streams stay independent of each other and of the
        op outcome; count rules consume no randomness at all.
        """
        for i, rule in enumerate(self.rules):
            if not rule.matches(op, device, node):
                continue
            self._matches[i] += 1
            if rule.count is not None:
                fired = self._matches[i] == rule.count
            else:
                fired = self._rngs[i].random() < rule.rate
            if fired:
                self.injected += 1
                self.by_class[rule.op_class] = (
                    self.by_class.get(rule.op_class, 0) + 1)
                return rule
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        spec = ",".join(str(r) for r in self.rules)
        return (f"<FaultInjector seed={self.seed} rules={spec!r} "
                f"injected={self.injected}>")


@dataclass(frozen=True)
class RetryPolicy:
    """Retry knob for transient device faults.

    A failed transfer/launch is re-attempted up to ``max_attempts`` times
    total; before attempt ``k+1`` the op sleeps
    ``backoff * multiplier**(k-1)`` *virtual* seconds — the resubmission
    latency a driver-level retry would cost, charged to the simulation
    clock so fault runs have honest makespans.
    """

    max_attempts: int = 3
    backoff: float = 50e-6
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff < 0 or self.multiplier < 0:
            raise ValueError("backoff and multiplier must be >= 0")

    def delay(self, attempt: int) -> float:
        """Virtual backoff before the retry following *attempt* (1-based)."""
        return self.backoff * (self.multiplier ** (attempt - 1))
