"""Fused-timeline execution for macro-replayed spread chunks.

A macro-replayed kernel chunk normally runs as a generator process: every
virtual-time segment (host overhead, issue latency, kernel time) is a
``Timeout`` the event loop delivers back into ``gen.send``.  The op
sequence of a compiled :class:`~repro.spread.macro.MacroProgram` is static,
so all of that per-op machinery re-derives the same facts on every replay.

This module replaces the generator with a **timeline walker**: per-chunk
segment durations are computed once per program with one vectorized pass
over the cost model (:meth:`CostModel.kernel_batch`, cumulative sums give
the segment-boundary table), and a slotted :class:`TimelineProc` advances
through them with pooled engine calls.  Real :class:`Event` objects are
materialized only at *interaction points* — the resource acquire for the
device queue, the ``AllOf`` join over depend/in-flight waits — and every
inert segment between them is one pooled ``_Call`` dispatch instead of a
Timeout + callback + generator resume.

**Bit identity.**  The walker arms each segment with the *individual*
durations the generator would have passed to ``sim.timeout`` (never with
cumsum differences — IEEE addition is not associative), pushes exactly one
queue entry per original Timeout boundary, and performs every resource
request/release, refcount move, trace record and exit-protocol step in the
same order at the same virtual times.  Traces and ``virtual_s`` are
therefore identical fused on or off, which ``tests/spread`` enforces.
Engagement mirrors macro replay and additionally requires that no causal
recorder or join hook observes per-op state (walkers skip ``op_begin``/
``op_end``); anything else falls back to the generator path.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.device.device import _prov_meta
from repro.sim import executor as hx
from repro.sim import trace as tr
from repro.sim.engine import Process


class Timeline:
    """Per-program virtual-time segments for the steady-state kernel path.

    ``totals``/``iters``/``issue`` are per-record Python floats (exact —
    computed with the same float64 operations the scalar cost model runs);
    ``segments`` is the cumulative segment-boundary table (host overhead →
    issue → kernel) kept for observability, NOT for arming delays.
    """

    __slots__ = ("totals", "iters", "issue", "overhead", "segments")

    def __init__(self, totals: List[float], iters: List[float],
                 issue: List[float], overhead: float) -> None:
        self.totals = totals
        self.iters = iters
        self.issue = issue
        self.overhead = overhead
        n = len(totals)
        durations = np.column_stack([
            np.full(n, overhead, dtype=np.float64),
            np.asarray(issue, dtype=np.float64),
            np.asarray(totals, dtype=np.float64)])
        self.segments = np.cumsum(durations, axis=1)


def kernel_timeline(rt, prog, kernel, cfg) -> Timeline:
    """The (cached) timeline of *prog*'s kernel records under *cfg*.

    Cached on the program keyed by the launch shape and the kernel's
    arithmetic intensity — the launch config is not part of the plan-cache
    key, so one program can replay under several configs.
    """
    cache = prog.timeline
    if cache is None:
        cache = prog.timeline = {}
    key = (cfg.num_teams, cfg.threads_per_team, cfg.simd,
           kernel.work_per_iter)
    tl = cache.get(key)
    if tl is None:
        tl = cache[key] = _build_timeline(rt, prog, kernel, cfg)
    return tl


def _build_timeline(rt, prog, kernel, cfg) -> Timeline:
    cm = rt.cost_model
    n = len(prog.records)
    totals = [0.0] * n
    iters = [0.0] * n
    issue = [0.0] * n
    devices = prog.devices
    for d in np.unique(devices):
        idx = np.flatnonzero(devices == d)
        spec = rt.devices[int(d)].spec
        it, tot = cm.kernel_batch(spec, prog.bounds[idx],
                                  num_teams=cfg.num_teams,
                                  threads_per_team=cfg.threads_per_team,
                                  simd=cfg.simd,
                                  work_per_iter=kernel.work_per_iter)
        lat = spec.kernel_issue_latency
        for j, k in enumerate(idx):
            totals[k] = tot[j]
            iters[k] = it[j]
            issue[k] = lat
    return Timeline(totals, iters, issue, cm.host_task_overhead)


class _Walker(Process):
    """Shared engine plumbing for phase-machine processes.

    A walker is a :class:`Process` with ``gen=None``: events feed a
    subclass ``_advance`` phase dispatcher instead of ``gen.send``.  Inert
    virtual-time segments advance via :meth:`_arm` — one pooled engine
    call standing in for the Timeout the generator path would create, at
    the same calendar-queue position.  Subclasses may switch ``self.gen``
    to a real generator at any phase boundary and continue through
    ``Process._step`` (fallback/exit tails).
    """

    __slots__ = ()

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.gen is not None:
            Process._step(self, value, exc)
        else:
            self._advance(value, exc)

    def _on_tick(self) -> None:
        if self._waiting_on is not self:
            return  # stale wakeup (interrupted while the segment ran)
        self._waiting_on = None
        self._advance(None, None)

    def _arm(self, delay: float) -> None:
        """One inert segment: self is the wait token (so ``interrupt()``
        finds a non-None ``_waiting_on`` to invalidate), one pooled engine
        call stands in for the generator path's Timeout push."""
        sim = self.sim
        self._waiting_on = self
        sim.fused_segments += 1
        sim._schedule_fn(self._on_tick, delay)


class TimelineProc(_Walker):
    """A kernel-chunk process that walks a precomputed timeline.

    Replicates ``macro._fast_kernel_body`` + ``Device.launch_kernel`` for
    the engaged steady state (no tools, no sanitizer, no faults, no
    recorder) phase by phase:

    0. host task overhead           (inert segment)
    1. AllOf join over waits        (interaction: event)
    2. epoch check / refcounts, kernel issue latency  (inert segment)
    3. device queue acquire         (interaction: resource)
    4. kernel time                  (inert segment)
    5. functional body, release, trace, implicit-exit protocol

    Inert segments advance via one pooled engine call each
    (``sim._schedule_fn``) — same push, same position in the calendar
    queue as the Timeout the generator path would have created, so the
    global event order is unchanged.  The epoch-mismatch fallback and the
    implicit-exit copy-back tail switch ``self.gen`` to the real generator
    and continue through ``Process._step`` — exactly the object path.
    """

    __slots__ = ("rt", "rec", "kernel", "cfg", "fuse", "waits", "steady",
                 "total", "iters", "issue_lat", "overhead", "phase",
                 "dev", "env", "kenv", "held", "_req",
                 "_kstart", "_issue_ts", "_ready_ts")

    @classmethod
    def spawn(cls, sim, rt, rec, kernel, cfg, fuse: bool, waits, steady,
              tl: Timeline, index: int, prov) -> "TimelineProc":
        """Deferred walker construction (mirrors ``Process.spawn_task``)."""
        self = cls.__new__(cls)
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self.gen = None
        self.name = rec.name
        self.san_clock = 0
        parent = sim.current_process
        if parent is not None:
            self.retry = parent.retry
            self.cp_heads = parent.cp_heads
        else:
            self.retry = 0
            self.cp_heads = ()
        self.prov = prov
        self.work_safe = True
        self._interrupts = None
        self._waiting_on = sim._proc_init
        self.rt = rt
        self.rec = rec
        self.kernel = kernel
        self.cfg = cfg
        self.fuse = fuse
        self.waits = waits
        self.steady = steady
        self.total = tl.totals[index]
        self.iters = tl.iters[index]
        self.issue_lat = tl.issue[index]
        self.overhead = tl.overhead
        self.phase = 0
        self.dev = None
        self.env = None
        self.kenv = None
        self.held = None
        self._req = None
        self._kstart = 0.0
        self._issue_ts = 0.0
        self._ready_ts = 0.0
        return self

    # -- the walk -----------------------------------------------------------

    def _advance(self, value: Any, exc: Optional[BaseException]) -> None:
        sim = self.sim
        sim.current_process = self
        if self._interrupts:
            self._abort(self._interrupts.popleft())
            return
        if exc is not None:
            self._abort(exc)
            return
        phase = self.phase
        if phase == 0:
            self.phase = phase = 1
            if self.overhead > 0:
                self._arm(self.overhead)
                return
        if phase == 1:
            self.phase = phase = 2
            waits = self.waits
            if waits:
                allof = sim.all_of(waits)
                if not allof._processed:
                    self._waiting_on = allof
                    allof.add_callback(self._resume)
                    return
        if phase == 2:
            rt = self.rt
            rec = self.rec
            epoch, held, kenv, _found = self.steady
            env = rt.dataenvs[rec.device_id]
            if env.epoch != epoch:
                # Present table moved between submit and run: delegate to
                # the generic op generator, exactly as the generator body
                # does.
                self.gen = self._fallback_gen()
                Process._step(self, None, None)
                return
            for _clause, _interval, entry in held:
                entry.refcount += 1
            self.env = env
            self.held = held
            self.kenv = kenv
            self.dev = rt.devices[rec.device_id]
            self._issue_ts = sim.now
            self.phase = phase = 3
            if self.issue_lat > 0:
                self._arm(self.issue_lat)
                return
        if phase == 3:
            self.phase = 4
            self._ready_ts = sim.now
            req = self.dev.queue.request(tag=self.kernel.name)
            self._req = req
            self._waiting_on = req
            req.add_callback(self._resume)
            return
        if phase == 4:
            self.phase = phase = 5
            self._kstart = sim.now
            if self.total > 0:
                self._arm(self.total)
                return
        self._finish()

    def _finish(self) -> None:
        sim = self.sim
        dev = self.dev
        kernel = self.kernel
        rec = self.rec
        req = self._req
        kenv = self.kenv
        try:
            sim.run_work(
                lambda: kernel.run(rec.lo, rec.hi, kenv),
                lambda: hx.env_accesses(kenv, kernel.scalars),
                name=kernel.name)
        except BaseException as err:  # noqa: BLE001 - deliver via event
            dev.queue.release(req)
            self._req = None
            self.fail(err)
            return
        dev.queue.release(req)
        self._req = None
        dev.kernels_launched += 1
        dev.trace.record(tr.KERNEL, kernel.name, lane=dev.queue.name,
                         start=self._kstart, end=sim.now,
                         device=rec.device_id,
                         lo=rec.lo, hi=rec.hi, iterations=self.iters,
                         issue=self._issue_ts, ready=self._ready_ts,
                         **_prov_meta(self))
        # Implicit exit: held refcounts usually just drop back; a count
        # hitting zero runs the full exit protocol (copy-back + release)
        # exactly as the generator body does.
        env = self.env
        copyback = []
        to_release = []
        for clause, interval, entry in self.held:
            if entry.refcount > 1:
                entry.refcount -= 1
            else:
                entry, deleted = env.exit(clause.var, interval)
                if deleted:
                    if clause.map_type.copies_out:
                        copyback.append((entry.buffer,
                                         entry.local_slice(interval),
                                         clause.var.array,
                                         interval.as_slice(),
                                         clause.var.name))
                    to_release.append(entry)
        if copyback or to_release:
            self.gen = self._exit_tail(copyback, to_release)
            Process._step(self, None, None)
            return
        self.trigger(None)

    def _fallback_gen(self):
        from repro.openmp import exec_ops

        rec = self.rec
        yield from exec_ops.kernel_op(
            self.rt, rec.device_id, self.kernel, rec.lo, rec.hi, rec.maps,
            launch=self.cfg, fuse_transfers=self.fuse, label=rec.label)

    def _exit_tail(self, copyback, to_release):
        from repro.openmp import exec_ops

        rec = self.rec
        if copyback:
            yield from exec_ops._issue_copies(self.rt, self.dev, copyback,
                                              h2d=False, fuse=self.fuse,
                                              label=rec.label)
        if to_release:
            yield from exec_ops._release_with_sync(self.rt, rec.device_id,
                                                   to_release)

    def _abort(self, exc: BaseException) -> None:
        """Mirror the generator path's unwinding: the queue slot is
        released only when the grant had been received (the generator's
        try/finally opens after ``yield req``); an ungranted queued
        request is left exactly as the object path leaves it."""
        req = self._req
        if req is not None and self.phase == 5:
            self.dev.queue.release(req)
            self._req = None
        self.fail(exc)


class _CopyProc(_Walker):
    """Base walker for one single-section, unfused memcpy.

    Replaces the ``sim.process(copy_h2d(...))`` sub-process the data ops
    spawn per section (see ``exec_ops._issue_copies``) when no observer
    needs per-op state: no fault injector, no causal recorder, no race
    sanitizer, no tools.  Every resource request/release, every timed
    segment and the final trace record happen in the order and at the
    virtual times of ``Device._copy_h2d_batch``/``_copy_d2h_batch``, so
    traces and ``virtual_s`` are bit-identical either way.
    """

    __slots__ = ("dev", "src", "sk", "dst", "dk", "cost", "phase",
                 "_queue_req", "_staging_req", "_link_req", "_snaps",
                 "_issue_ts", "_ready_ts", "_cstart", "_wire_start",
                 "_wire_end")

    @classmethod
    def spawn(cls, sim, dev, src, sk, dst, dk, name: str) -> "_CopyProc":
        """Mirror of ``Process.__init__`` for a copy sub-process: inherit
        provenance from the spawning (data-op) process and push ``_start``
        at the same calendar-queue position ``sim.process`` would."""
        self = cls.__new__(cls)
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = False
        self._processed = False
        self.gen = None
        self.name = name
        self.san_clock = 0
        parent = sim.current_process
        if parent is not None:
            self.prov = parent.prov
            self.retry = parent.retry
            self.cp_heads = parent.cp_heads
        else:
            self.prov = None
            self.retry = 0
            self.cp_heads = ()
        self.work_safe = True
        self._interrupts = None
        self._waiting_on = sim._proc_init
        self.dev = dev
        self.src = src
        self.sk = sk
        self.dst = dst
        self.dk = dk
        self.cost = None
        self.phase = 0
        self._queue_req = None
        self._staging_req = None
        self._link_req = None
        self._snaps = None
        self._issue_ts = 0.0
        self._ready_ts = 0.0
        self._cstart = 0.0
        self._wire_start = 0.0
        self._wire_end = 0.0
        sim._schedule_fn(self._start)
        return self

    def _wait(self, req) -> None:
        self._waiting_on = req
        req.add_callback(self._resume)


class CopyH2D(_CopyProc):
    """Host-to-device copy walker (``Device._copy_h2d_batch``, one
    section, unfused):

    0. cost + issue-time queue claim, per-call latency  (inert segment)
    1. staging acquire                                  (interaction)
    2. staging time                                     (inert segment)
    3. snapshot + staging release, queue wait           (interaction)
    4. link acquire                                     (interaction)
    5. wire time                                        (inert segment)
    6. link release, commit, queue release, trace
    """

    __slots__ = ()

    def _advance(self, value: Any, exc: Optional[BaseException]) -> None:
        sim = self.sim
        sim.current_process = self
        if self._interrupts:
            self._abort(self._interrupts.popleft())
            return
        if exc is not None:
            self._abort(exc)
            return
        dev = self.dev
        phase = self.phase
        if phase == 0:
            cost = self.cost = dev.cost_model.transfer(
                dev.link_spec, self.src[self.sk].nbytes)
            self._issue_ts = sim.now
            # Stream slot claimed at issue time (see _copy_h2d_batch).
            self._queue_req = dev.queue.request(tag=self.name)
            self.phase = phase = 1
            if cost.latency > 0:
                self._arm(cost.latency)
                return
        if phase == 1:
            self.phase = 2
            req = self._staging_req = dev.staging.request(tag=self.name)
            self._wait(req)
            return
        if phase == 2:
            self.phase = phase = 3
            lead = dev._staging_time(self.cost.bytes)
            if lead > 0:
                self._arm(lead)
                return
        if phase == 3:
            staging_req = self._staging_req
            self._staging_req = None
            try:
                self._snaps = dev._snapshot_sections(
                    [(self.src, self.sk)], name=f"{self.name}:stage")
            except BaseException as err:  # noqa: BLE001 - deliver via event
                dev.staging.release(staging_req)
                self.fail(err)
                return
            dev.staging.release(staging_req)
            self._ready_ts = sim.now
            self.phase = phase = 4
            req = self._queue_req
            if not req._processed:
                self._wait(req)
                return
            # Queue slot already granted and delivered: continue
            # synchronously, exactly as ``gen.send`` does when a yielded
            # event is already processed.
        if phase == 4:
            self._cstart = sim.now
            self.phase = 5
            req = self._link_req = dev.link.request(tag=self.name)
            self._wait(req)
            return
        if phase == 5:
            self.phase = 6
            self._wire_start = sim.now
            wire = self.cost.wire_time
            if wire > 0:
                self._arm(wire)
                return
        self._wire_end = sim.now
        dev.link.release(self._link_req)
        self._link_req = None
        try:
            dev._commit_sections([(self.dst, self.dk)], self._snaps,
                                 name=f"{self.name}:commit")
        except BaseException as err:  # noqa: BLE001 - deliver via event
            dev.queue.release(self._queue_req)
            self._queue_req = None
            self.fail(err)
            return
        dev.queue.release(self._queue_req)
        self._queue_req = None
        cost = self.cost
        dev.memcpy_calls += 1
        dev.h2d_bytes += cost.bytes
        dev.trace.record(tr.H2D, self.name, lane=dev.queue.name,
                         start=self._cstart, end=sim.now,
                         device=dev.device_id, bytes=cost.bytes,
                         issue=self._issue_ts, ready=self._ready_ts,
                         wire_start=self._wire_start,
                         wire_end=self._wire_end,
                         fused=0, **_prov_meta(self))
        self.trigger(None)

    def _abort(self, exc: BaseException) -> None:
        """Replicate the generator's try/finally unwinding per phase: the
        staging try covers only the staging-time segment, the queue try
        opens after the queue grant, the link finally inside it."""
        dev = self.dev
        phase = self.phase
        if phase == 3 and self._staging_req is not None:
            dev.staging.release(self._staging_req)
            self._staging_req = None
        elif phase == 5:
            dev.queue.release(self._queue_req)
            self._queue_req = None
        elif phase == 6:
            dev.link.release(self._link_req)
            self._link_req = None
            dev.queue.release(self._queue_req)
            self._queue_req = None
        self.fail(exc)


class CopyD2H(_CopyProc):
    """Device-to-host copy walker (``Device._copy_d2h_batch``, one
    section, unfused):

    0. cost + issue-time queue claim, per-call latency  (inert segment)
    1. queue wait                                       (interaction)
    2. link acquire                                     (interaction)
    3. wire time                                        (inert segment)
    4. link release, snapshot, queue release, staging acquire (interaction)
    5. trailing staging time                            (inert segment)
    6. commit, staging release, trace
    """

    __slots__ = ()

    def _advance(self, value: Any, exc: Optional[BaseException]) -> None:
        sim = self.sim
        sim.current_process = self
        if self._interrupts:
            self._abort(self._interrupts.popleft())
            return
        if exc is not None:
            self._abort(exc)
            return
        dev = self.dev
        phase = self.phase
        if phase == 0:
            cost = self.cost = dev.cost_model.transfer(
                dev.link_spec, self.src[self.sk].nbytes)
            self._issue_ts = sim.now
            self._queue_req = dev.queue.request(tag=self.name)
            self.phase = phase = 1
            if cost.latency > 0:
                self._arm(cost.latency)
                return
        if phase == 1:
            self._ready_ts = sim.now
            self.phase = phase = 2
            req = self._queue_req
            if not req._processed:
                self._wait(req)
                return
            # Queue slot already granted and delivered: continue
            # synchronously, exactly as ``gen.send`` does when a yielded
            # event is already processed.
        if phase == 2:
            self._cstart = sim.now
            self.phase = 3
            req = self._link_req = dev.link.request(tag=self.name)
            self._wait(req)
            return
        if phase == 3:
            self.phase = phase = 4
            self._wire_start = sim.now
            wire = self.cost.wire_time
            if wire > 0:
                self._arm(wire)
                return
        if phase == 4:
            self._wire_end = sim.now
            dev.link.release(self._link_req)
            self._link_req = None
            queue_req = self._queue_req
            self._queue_req = None
            try:
                self._snaps = dev._snapshot_sections(
                    [(self.src, self.sk)], name=f"{self.name}:stage")
            except BaseException as err:  # noqa: BLE001 - deliver via event
                dev.queue.release(queue_req)
                self.fail(err)
                return
            dev.queue.release(queue_req)
            self.phase = 5
            req = self._staging_req = dev.staging.request(tag=self.name)
            self._wait(req)
            return
        if phase == 5:
            self.phase = phase = 6
            tail = dev._staging_time(self.cost.bytes)
            if tail > 0:
                self._arm(tail)
                return
        staging_req = self._staging_req
        self._staging_req = None
        try:
            dev._commit_sections([(self.dst, self.dk)], self._snaps,
                                 name=f"{self.name}:commit")
        except BaseException as err:  # noqa: BLE001 - deliver via event
            dev.staging.release(staging_req)
            self.fail(err)
            return
        dev.staging.release(staging_req)
        cost = self.cost
        dev.memcpy_calls += 1
        dev.d2h_bytes += cost.bytes
        # ``done`` > ``end`` for D2H: the trailing staging piece drains on
        # the host after the device queue slot is released.
        dev.trace.record(tr.D2H, self.name, lane=dev.queue.name,
                         start=self._cstart, end=self._wire_end,
                         device=dev.device_id, bytes=cost.bytes,
                         issue=self._issue_ts, ready=self._ready_ts,
                         wire_start=self._wire_start,
                         wire_end=self._wire_end,
                         done=sim.now, fused=0, **_prov_meta(self))
        self.trigger(None)

    def _abort(self, exc: BaseException) -> None:
        """Per-phase unwinding mirror of ``_copy_d2h_batch``: the queue
        try opens after the queue grant and covers the link/wire/snapshot
        span; the staging try covers only the trailing segment."""
        dev = self.dev
        phase = self.phase
        if phase == 3:
            dev.queue.release(self._queue_req)
            self._queue_req = None
        elif phase == 4:
            dev.link.release(self._link_req)
            self._link_req = None
            dev.queue.release(self._queue_req)
            self._queue_req = None
        elif phase == 6 and self._staging_req is not None:
            dev.staging.release(self._staging_req)
            self._staging_req = None
        self.fail(exc)
