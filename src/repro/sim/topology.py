"""Node topology: sockets, host links, and accelerator devices.

The reproduction targets the paper's testbed, a CTE-POWER node (POWER9, two
sockets, two NVIDIA V100-16GB per socket).  The performance-relevant facts we
model are:

* each device has its own copy engines and compute engine (so kernels on
  different devices run concurrently — the paper observed near-linear kernel
  speedup);
* all devices on the *same socket* share that socket's host link, and
  transfers on a shared link serialize (FIFO) — this is the communication
  bottleneck that caps the overall speedup at ~2X with 4 GPUs;
* host-side per-call overhead is paid for every memcpy the runtime issues
  (the paper counts 12 sequential CUDA memcpy calls per mapped chunk).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

GB = 1e9


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one accelerator.

    ``flops_per_iter_throughput`` is expressed as loop iterations per second
    when the kernel saturates the device (all SMs busy); the kernel cost
    model derates it when fewer teams/threads are requested.
    """

    name: str = "V100"
    memory_bytes: float = 16 * GB
    num_sms: int = 80
    max_threads_per_sm: int = 2048
    simd_width: int = 32  # warp lanes
    iters_per_second: float = 6.0e10  # saturated simple-kernel throughput
    kernel_launch_latency: float = 8e-6
    #: Host-side time from "dependences satisfied" to the kernel being
    #: enqueued on the device stream.  Offloaded kernels go through task
    #: dispatch + argument marshalling in libomptarget (hundreds of us),
    #: far slower than issuing a memcpy — which is why, in the paper's
    #: traces, a buffer's kernels end up queued *behind* the next buffer's
    #: already-issued transfers (Fig. 4) instead of overlapping them.
    kernel_issue_latency: float = 3e-4
    #: cudaMalloc/cudaFree semantics: on real CUDA both can synchronize the
    #: whole device (drain its queue), which injects implicit barriers into
    #: any pipeline that maps/unmaps buffers while other work is queued —
    #: the effect that makes the paper's Two Buffers / Double Buffering
    #: variants *slower* than One Buffer despite their extra concurrency.
    alloc_sync: bool = True
    free_sync: bool = True
    alloc_latency: float = 1e-4
    free_latency: float = 1e-4

    @property
    def max_parallelism(self) -> int:
        return self.num_sms * self.max_threads_per_sm


@dataclass(frozen=True)
class LinkSpec:
    """A host<->device link (shared per socket on the simulated node)."""

    name: str = "socket-link"
    bandwidth_bytes_per_s: float = 30e9
    per_call_latency: float = 12e-6


@dataclass(frozen=True)
class HostSpec:
    """Host-side staging characteristics.

    Every transfer of pageable memory goes through a host staging copy
    (host DRAM <-> pinned buffer) before/after the DMA wire transfer.  The
    staging path is shared by *all* devices of the node — this is the
    aggregate communication bottleneck the paper observes when "transferring
    data to and from multiple GPUs" (Section VI-A): per-socket links stop
    being the limit once both sockets are active, and the host memory system
    caps the total.
    """

    name: str = "host-staging"
    staging_bandwidth_bytes_per_s: float = 28e9


@dataclass
class NodeTopology:
    """Devices, their socket placement, and the per-socket host links.

    ``sockets[s]`` lists the device ids attached to socket *s*; each socket
    owns one :class:`LinkSpec`.  Device ids are dense ``0..num_devices-1``.
    """

    device_specs: List[DeviceSpec]
    sockets: List[List[int]]
    link_specs: List[LinkSpec]
    host_spec: HostSpec = HostSpec()
    host_name: str = "host"

    def __post_init__(self) -> None:
        seen: Dict[int, int] = {}
        for s, devs in enumerate(self.sockets):
            for d in devs:
                if d in seen:
                    raise ValueError(f"device {d} on two sockets")
                seen[d] = s
        if sorted(seen) != list(range(len(self.device_specs))):
            raise ValueError("sockets must cover device ids 0..n-1 exactly")
        if len(self.link_specs) != len(self.sockets):
            raise ValueError("one LinkSpec per socket required")
        self._socket_of = seen

    @property
    def num_devices(self) -> int:
        return len(self.device_specs)

    def socket_of(self, device_id: int) -> int:
        try:
            return self._socket_of[device_id]
        except KeyError:
            raise ValueError(f"unknown device id {device_id}")

    def link_of(self, device_id: int) -> LinkSpec:
        return self.link_specs[self.socket_of(device_id)]

    def devices_on_socket(self, socket: int) -> Sequence[int]:
        return tuple(self.sockets[socket])


def cte_power_node(num_devices: int = 4,
                   memory_bytes: float = 16 * GB,
                   link_bandwidth: float = 19.4e9,
                   staging_bandwidth: float = 27.8e9,
                   per_call_latency: float = 12e-6,
                   iters_per_second: float = 6.0e10) -> NodeTopology:
    """A CTE-POWER-like node: two sockets, two V100s per socket.

    Devices 0 and 1 sit on socket 0; devices 2 and 3 on socket 1, matching
    the usual POWER9 AC922 wiring.  ``num_devices`` may be 1..4 (the paper
    evaluates 1, 2 and 4 GPUs).  The default bandwidths are the calibration
    derived from the paper's Table I (see DESIGN.md §4): an effective
    per-socket pageable-transfer rate of ~19.4 GB/s and a host staging
    aggregate of ~1.43x that.
    """
    if not 1 <= num_devices <= 4:
        raise ValueError("cte_power_node supports 1..4 devices")
    spec = DeviceSpec(memory_bytes=memory_bytes,
                      iters_per_second=iters_per_second)
    placement = [[d for d in range(num_devices) if d < 2],
                 [d for d in range(num_devices) if d >= 2]]
    sockets = [s for s in placement if s]
    links = [LinkSpec(name=f"socket{i}-link",
                      bandwidth_bytes_per_s=link_bandwidth,
                      per_call_latency=per_call_latency)
             for i in range(len(sockets))]
    return NodeTopology(device_specs=[spec] * num_devices,
                        sockets=sockets,
                        link_specs=links,
                        host_spec=HostSpec(
                            staging_bandwidth_bytes_per_s=staging_bandwidth))


def uniform_node(num_devices: int,
                 devices_per_socket: int = 1,
                 memory_bytes: float = 16 * GB,
                 link_bandwidth: float = 30e9,
                 staging_bandwidth: float = 1e12,
                 per_call_latency: float = 12e-6,
                 iters_per_second: float = 6.0e10,
                 device_specs: Sequence[DeviceSpec] | None = None) -> NodeTopology:
    """A generic node for tests: *num_devices* spread over sockets of
    *devices_per_socket* each (last socket may be partial).

    ``device_specs`` may override the per-device specs, e.g. to create an
    imbalanced node for the dynamic-schedule ablation.
    """
    if num_devices < 1:
        raise ValueError("need at least one device")
    if devices_per_socket < 1:
        raise ValueError("devices_per_socket must be >= 1")
    if device_specs is None:
        specs = [DeviceSpec(memory_bytes=memory_bytes,
                            iters_per_second=iters_per_second)
                 for _ in range(num_devices)]
    else:
        specs = list(device_specs)
        if len(specs) != num_devices:
            raise ValueError("device_specs length mismatch")
    sockets: List[List[int]] = []
    for d in range(num_devices):
        if d % devices_per_socket == 0:
            sockets.append([])
        sockets[-1].append(d)
    links = [LinkSpec(name=f"socket{i}-link",
                      bandwidth_bytes_per_s=link_bandwidth,
                      per_call_latency=per_call_latency)
             for i in range(len(sockets))]
    return NodeTopology(device_specs=specs, sockets=sockets,
                        link_specs=links,
                        host_spec=HostSpec(
                            staging_bandwidth_bytes_per_s=staging_bandwidth))
