"""Node topology: sockets, host links, and accelerator devices.

The reproduction targets the paper's testbed, a CTE-POWER node (POWER9, two
sockets, two NVIDIA V100-16GB per socket).  The performance-relevant facts we
model are:

* each device has its own copy engines and compute engine (so kernels on
  different devices run concurrently — the paper observed near-linear kernel
  speedup);
* all devices on the *same socket* share that socket's host link, and
  transfers on a shared link serialize (FIFO) — this is the communication
  bottleneck that caps the overall speedup at ~2X with 4 GPUs;
* host-side per-call overhead is paid for every memcpy the runtime issues
  (the paper counts 12 sequential CUDA memcpy calls per mapped chunk).

Beyond the single node, :class:`ClusterTopology` composes N nodes behind
the same flattened device-id interface, adding one inter-node network
link per non-root node (see docs/cluster.md).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.util import envknobs

GB = 1e9

#: Environment variable naming the default machine (``cluster:NxM`` or
#: ``cte-power[:N]``); consulted wherever a topology would otherwise
#: default to the single paper node.
MACHINE_ENV = "REPRO_MACHINE"


def _require_positive(owner: str, name: str, value) -> None:
    if not value > 0:
        raise ValueError(f"{owner}.{name} must be > 0, got {value!r}")


def _require_non_negative(owner: str, name: str, value) -> None:
    if not value >= 0:
        raise ValueError(f"{owner}.{name} must be >= 0, got {value!r}")


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one accelerator.

    ``flops_per_iter_throughput`` is expressed as loop iterations per second
    when the kernel saturates the device (all SMs busy); the kernel cost
    model derates it when fewer teams/threads are requested.
    """

    name: str = "V100"
    memory_bytes: float = 16 * GB
    num_sms: int = 80
    max_threads_per_sm: int = 2048
    simd_width: int = 32  # warp lanes
    iters_per_second: float = 6.0e10  # saturated simple-kernel throughput
    kernel_launch_latency: float = 8e-6
    #: Host-side time from "dependences satisfied" to the kernel being
    #: enqueued on the device stream.  Offloaded kernels go through task
    #: dispatch + argument marshalling in libomptarget (hundreds of us),
    #: far slower than issuing a memcpy — which is why, in the paper's
    #: traces, a buffer's kernels end up queued *behind* the next buffer's
    #: already-issued transfers (Fig. 4) instead of overlapping them.
    kernel_issue_latency: float = 3e-4
    #: cudaMalloc/cudaFree semantics: on real CUDA both can synchronize the
    #: whole device (drain its queue), which injects implicit barriers into
    #: any pipeline that maps/unmaps buffers while other work is queued —
    #: the effect that makes the paper's Two Buffers / Double Buffering
    #: variants *slower* than One Buffer despite their extra concurrency.
    alloc_sync: bool = True
    free_sync: bool = True
    alloc_latency: float = 1e-4
    free_latency: float = 1e-4

    def __post_init__(self) -> None:
        for name in ("memory_bytes", "num_sms", "max_threads_per_sm",
                     "simd_width", "iters_per_second"):
            _require_positive("DeviceSpec", name, getattr(self, name))
        for name in ("kernel_launch_latency", "kernel_issue_latency",
                     "alloc_latency", "free_latency"):
            _require_non_negative("DeviceSpec", name, getattr(self, name))

    @property
    def max_parallelism(self) -> int:
        return self.num_sms * self.max_threads_per_sm


@dataclass(frozen=True)
class LinkSpec:
    """A host<->device link (shared per socket on the simulated node)."""

    name: str = "socket-link"
    bandwidth_bytes_per_s: float = 30e9
    per_call_latency: float = 12e-6

    def __post_init__(self) -> None:
        _require_positive("LinkSpec", "bandwidth_bytes_per_s",
                          self.bandwidth_bytes_per_s)
        _require_non_negative("LinkSpec", "per_call_latency",
                              self.per_call_latency)


@dataclass(frozen=True)
class HostSpec:
    """Host-side staging characteristics.

    Every transfer of pageable memory goes through a host staging copy
    (host DRAM <-> pinned buffer) before/after the DMA wire transfer.  The
    staging path is shared by *all* devices of the node — this is the
    aggregate communication bottleneck the paper observes when "transferring
    data to and from multiple GPUs" (Section VI-A): per-socket links stop
    being the limit once both sockets are active, and the host memory system
    caps the total.
    """

    name: str = "host-staging"
    staging_bandwidth_bytes_per_s: float = 28e9

    def __post_init__(self) -> None:
        _require_positive("HostSpec", "staging_bandwidth_bytes_per_s",
                          self.staging_bandwidth_bytes_per_s)


@dataclass(frozen=True)
class NetworkLinkSpec:
    """An inter-node network link (node <-> cluster interconnect).

    The defaults approximate a 100 Gb/s fabric (EDR InfiniBand class):
    ~12.5 GB/s of payload bandwidth and a microsecond-scale per-message
    latency.  Each non-root node owns one such link (full duplex is not
    modeled; the paper-style host-as-carrier halo exchange serializes on
    it, which is exactly the contention a cluster study needs to see).
    """

    name: str = "network-link"
    bandwidth_bytes_per_s: float = 12.5e9
    per_message_latency: float = 1.5e-6

    def __post_init__(self) -> None:
        _require_positive("NetworkLinkSpec", "bandwidth_bytes_per_s",
                          self.bandwidth_bytes_per_s)
        _require_non_negative("NetworkLinkSpec", "per_message_latency",
                              self.per_message_latency)


@dataclass
class NodeTopology:
    """Devices, their socket placement, and the per-socket host links.

    ``sockets[s]`` lists the device ids attached to socket *s*; each socket
    owns one :class:`LinkSpec`.  Device ids are dense ``0..num_devices-1``.
    """

    device_specs: List[DeviceSpec]
    sockets: List[List[int]]
    link_specs: List[LinkSpec]
    host_spec: HostSpec = HostSpec()
    host_name: str = "host"

    def __post_init__(self) -> None:
        if not self.device_specs:
            raise ValueError(
                "NodeTopology.device_specs must name at least one device")
        if not self.sockets:
            raise ValueError(
                "NodeTopology.sockets must name at least one socket")
        seen: Dict[int, int] = {}
        for s, devs in enumerate(self.sockets):
            if not devs:
                raise ValueError(
                    f"NodeTopology.sockets[{s}] has no devices")
            for d in devs:
                if d in seen:
                    raise ValueError(f"device {d} on two sockets")
                seen[d] = s
        if sorted(seen) != list(range(len(self.device_specs))):
            raise ValueError("sockets must cover device ids 0..n-1 exactly")
        if len(self.link_specs) != len(self.sockets):
            raise ValueError("one LinkSpec per socket required")
        self._socket_of = seen

    @property
    def num_devices(self) -> int:
        return len(self.device_specs)

    def socket_of(self, device_id: int) -> int:
        try:
            return self._socket_of[device_id]
        except KeyError:
            raise ValueError(f"unknown device id {device_id}")

    def link_of(self, device_id: int) -> LinkSpec:
        return self.link_specs[self.socket_of(device_id)]

    def devices_on_socket(self, socket: int) -> Sequence[int]:
        return tuple(self.sockets[socket])

    # -- single-node view of the cluster interface ---------------------------

    @property
    def num_nodes(self) -> int:
        return 1

    def node_of(self, device_id: int) -> int:
        self.socket_of(device_id)  # validates the id
        return 0

    def node_devices(self, node: int) -> Tuple[int, ...]:
        if node != 0:
            raise ValueError(f"unknown node id {node}")
        return tuple(range(self.num_devices))

    def host_spec_of(self, node: int) -> HostSpec:
        if node != 0:
            raise ValueError(f"unknown node id {node}")
        return self.host_spec


@dataclass
class ClusterTopology:
    """N :class:`NodeTopology` nodes behind one flat device-id space.

    Device ids are dense ``0..num_devices-1`` in node order: node 0 owns
    ``0..m0-1``, node 1 owns ``m0..m0+m1-1`` and so on.  The flattened
    ``device_specs`` / ``sockets`` / ``link_specs`` / ``socket_of`` /
    ``link_of`` views satisfy the :class:`NodeTopology` interface, so the
    runtime, cost model and analyzers work on a cluster unchanged.

    Cluster-specific structure on top of that:

    * ``node_of(d)`` / ``node_devices(n)`` map between the flat id space
      and the two-level one;
    * node 0 is the *root* node, where the host arrays live; transfers to
      or from any other node additionally traverse that node's inter-node
      network link (one :class:`NetworkLinkSpec`-shaped FIFO resource per
      non-root node, so network contention shows up natively in the
      calendar-queue engine and the critical-path analyzer);
    * each node keeps its own host staging buffer (``host_spec_of(n)``).
    """

    nodes: List[NodeTopology]
    network_spec: NetworkLinkSpec = field(default_factory=NetworkLinkSpec)
    host_name: str = "host"

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError(
                "ClusterTopology.nodes must name at least one node")
        device_specs: List[DeviceSpec] = []
        link_specs: List[LinkSpec] = []
        sockets: List[List[int]] = []
        node_of: Dict[int, int] = {}
        node_devices: List[Tuple[int, ...]] = []
        socket_of: Dict[int, int] = {}
        base = 0
        for n, node in enumerate(self.nodes):
            ids = tuple(range(base, base + node.num_devices))
            node_devices.append(ids)
            socket_base = len(sockets)
            for local, dev in enumerate(ids):
                node_of[dev] = n
                socket_of[dev] = socket_base + node.socket_of(local)
            for devs in node.sockets:
                sockets.append([base + d for d in devs])
            link_specs.extend(replace(spec, name=f"node{n}:{spec.name}")
                              for spec in node.link_specs)
            device_specs.extend(node.device_specs)
            base += node.num_devices
        self.device_specs = device_specs
        self.link_specs = link_specs
        self.sockets = sockets
        self._node_of = node_of
        self._node_devices = node_devices
        self._socket_of = socket_of

    @property
    def num_devices(self) -> int:
        return len(self.device_specs)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def host_spec(self) -> HostSpec:
        """Root-node staging spec (the flat single-node view)."""
        return self.nodes[0].host_spec

    def socket_of(self, device_id: int) -> int:
        try:
            return self._socket_of[device_id]
        except KeyError:
            raise ValueError(f"unknown device id {device_id}")

    def link_of(self, device_id: int) -> LinkSpec:
        return self.link_specs[self.socket_of(device_id)]

    def devices_on_socket(self, socket: int) -> Sequence[int]:
        return tuple(self.sockets[socket])

    def node_of(self, device_id: int) -> int:
        try:
            return self._node_of[device_id]
        except KeyError:
            raise ValueError(f"unknown device id {device_id}")

    def node_devices(self, node: int) -> Tuple[int, ...]:
        try:
            return self._node_devices[node]
        except IndexError:
            raise ValueError(f"unknown node id {node}")

    def host_spec_of(self, node: int) -> HostSpec:
        if not 0 <= node < len(self.nodes):
            raise ValueError(f"unknown node id {node}")
        return self.nodes[node].host_spec


def cte_power_node(num_devices: int = 4,
                   memory_bytes: float = 16 * GB,
                   link_bandwidth: float = 19.4e9,
                   staging_bandwidth: float = 27.8e9,
                   per_call_latency: float = 12e-6,
                   iters_per_second: float = 6.0e10) -> NodeTopology:
    """A CTE-POWER-like node: two sockets, two V100s per socket.

    Devices 0 and 1 sit on socket 0; devices 2 and 3 on socket 1, matching
    the usual POWER9 AC922 wiring.  ``num_devices`` may be 1..4 (the paper
    evaluates 1, 2 and 4 GPUs).  The default bandwidths are the calibration
    derived from the paper's Table I (see DESIGN.md §4): an effective
    per-socket pageable-transfer rate of ~19.4 GB/s and a host staging
    aggregate of ~1.43x that.
    """
    if not 1 <= num_devices <= 4:
        raise ValueError("cte_power_node supports 1..4 devices")
    spec = DeviceSpec(memory_bytes=memory_bytes,
                      iters_per_second=iters_per_second)
    placement = [[d for d in range(num_devices) if d < 2],
                 [d for d in range(num_devices) if d >= 2]]
    sockets = [s for s in placement if s]
    links = [LinkSpec(name=f"socket{i}-link",
                      bandwidth_bytes_per_s=link_bandwidth,
                      per_call_latency=per_call_latency)
             for i in range(len(sockets))]
    return NodeTopology(device_specs=[spec] * num_devices,
                        sockets=sockets,
                        link_specs=links,
                        host_spec=HostSpec(
                            staging_bandwidth_bytes_per_s=staging_bandwidth))


def uniform_node(num_devices: int,
                 devices_per_socket: int = 1,
                 memory_bytes: float = 16 * GB,
                 link_bandwidth: float = 30e9,
                 staging_bandwidth: float = 1e12,
                 per_call_latency: float = 12e-6,
                 iters_per_second: float = 6.0e10,
                 device_specs: Sequence[DeviceSpec] | None = None) -> NodeTopology:
    """A generic node for tests: *num_devices* spread over sockets of
    *devices_per_socket* each (last socket may be partial).

    ``device_specs`` may override the per-device specs, e.g. to create an
    imbalanced node for the dynamic-schedule ablation.
    """
    if num_devices < 1:
        raise ValueError("need at least one device")
    if devices_per_socket < 1:
        raise ValueError("devices_per_socket must be >= 1")
    if device_specs is None:
        specs = [DeviceSpec(memory_bytes=memory_bytes,
                            iters_per_second=iters_per_second)
                 for _ in range(num_devices)]
    else:
        specs = list(device_specs)
        if len(specs) != num_devices:
            raise ValueError("device_specs length mismatch")
    sockets: List[List[int]] = []
    for d in range(num_devices):
        if d % devices_per_socket == 0:
            sockets.append([])
        sockets[-1].append(d)
    links = [LinkSpec(name=f"socket{i}-link",
                      bandwidth_bytes_per_s=link_bandwidth,
                      per_call_latency=per_call_latency)
             for i in range(len(sockets))]
    return NodeTopology(device_specs=specs, sockets=sockets,
                        link_specs=links,
                        host_spec=HostSpec(
                            staging_bandwidth_bytes_per_s=staging_bandwidth))


def uniform_cluster(num_nodes: int,
                    devices_per_node: int,
                    devices_per_socket: int = 2,
                    network: Optional[NetworkLinkSpec] = None,
                    **node_kwargs) -> ClusterTopology:
    """A cluster of *num_nodes* identical :func:`uniform_node` nodes.

    Extra keyword arguments are forwarded to :func:`uniform_node`, so the
    same bandwidth/latency calibration knobs apply per node.
    """
    if num_nodes < 1:
        raise ValueError("uniform_cluster.num_nodes must be >= 1")
    if devices_per_node < 1:
        raise ValueError("uniform_cluster.devices_per_node must be >= 1")
    per_socket = min(devices_per_socket, devices_per_node)
    nodes = [uniform_node(devices_per_node, per_socket, **node_kwargs)
             for _ in range(num_nodes)]
    return ClusterTopology(nodes=nodes,
                           network_spec=network or NetworkLinkSpec())


_CLUSTER_RE = re.compile(r"cluster:(\d+)x(\d+)", re.IGNORECASE)
_CTE_RE = re.compile(r"cte-power(?::(\d+))?", re.IGNORECASE)
_GPUS_RE = re.compile(r"gpus:(\d+)", re.IGNORECASE)


def parse_machine_spec(spec: str, **cluster_kwargs):
    """Parse a ``--machine`` / ``REPRO_MACHINE`` spec into a topology.

    Grammar (case-insensitive):

    * ``cluster:NxM`` — N nodes of M GPUs each (:func:`uniform_cluster`);
    * ``cte-power`` / ``cte-power:N`` — the paper's single node with N
      (default 4) GPUs (:func:`cte_power_node`);
    * ``gpus:N`` — a generic single node with N GPUs (N may exceed the
      4-GPU CTE-POWER layout; :func:`uniform_node` with CTE-POWER-like
      per-socket wiring).
    """
    text = str(spec).strip()
    m = _CLUSTER_RE.fullmatch(text)
    if m:
        num_nodes, per_node = int(m.group(1)), int(m.group(2))
        if num_nodes < 1 or per_node < 1:
            raise ValueError(
                f"machine spec {spec!r}: cluster:NxM needs N >= 1, M >= 1")
        return uniform_cluster(num_nodes, per_node, **cluster_kwargs)
    m = _CTE_RE.fullmatch(text)
    if m:
        return cte_power_node(int(m.group(1)) if m.group(1) else 4)
    m = _GPUS_RE.fullmatch(text)
    if m:
        num = int(m.group(1))
        if num < 1:
            raise ValueError(f"machine spec {spec!r}: gpus:N needs N >= 1")
        if num <= 4:
            return cte_power_node(num)
        return uniform_node(num, devices_per_socket=2)
    raise ValueError(
        f"machine spec {spec!r}: expected 'cluster:NxM', 'cte-power[:N]' "
        "or 'gpus:N'")


def machine_from_env():
    """The :data:`MACHINE_ENV` topology, or ``None`` when unset.

    A malformed value raises :class:`ValueError` (uniform with the other
    ``REPRO_*`` knobs — see :mod:`repro.util.envknobs`).
    """
    spec = envknobs.env_raw(MACHINE_ENV)
    if spec is None:
        return None
    return parse_machine_spec(spec)
