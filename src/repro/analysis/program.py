r"""The ``.omp`` mini-language: whole directive programs for spreadlint.

A program file is a line-oriented listing that captures exactly the
information the static analyzer needs from the surrounding host code —
array extents, scalar constants, the associated loop of each executable
directive, and host synchronization points::

    // Somier-style halo exchange (comments run to end of line)
    declare N = 64
    declare pos[N]
    declare force[N]
    machine 2                      // optional: number of devices

    #pragma omp target enter data spread devices(0,1) \
        range(1:N-2) chunk_size(16) \
        map(to: pos[omp_spread_start-1 : omp_spread_size+2])

    #pragma omp target spread devices(0,1) \
        map(to: pos[omp_spread_start-1 : omp_spread_size+2]) \
        map(from: force[omp_spread_start : omp_spread_size])
    loop(1 : N-2)

    taskwait

Statements:

* ``declare NAME = expr`` — integer scalar constant (exprs may use
  previously declared scalars, ``+ - *`` and parentheses);
* ``declare NAME[expr]`` — host array with the given extent;
* ``machine N`` — the node has ``N`` devices (enables device-id range
  checks); ``machine SPEC`` names a full topology with the ``--machine``
  grammar (``cluster:NxM`` / ``cte-power[:N]`` / ``gpus:N``), so cluster
  lints (SL6xx/SL7xx) see the real links; ``machine *`` declares the
  program machine-parametric — the linter then quantifies its verdict
  over every device count ``N >= 1``; ``machine cluster:*xG`` quantifies
  over every node count ``M >= 1`` with ``G`` GPUs per node; optional;
* a pragma line (leading ``#pragma``/``#``/``omp`` accepted, ``\``
  continuations joined) — parsed with the real
  :mod:`repro.pragma` front end;
* ``loop(start : length)`` — the associated loop of the **preceding**
  executable directive;
* ``taskwait`` — host joins all in-flight work.

Bad-fixture files annotate their expected findings with
``// expect: SL201 SL202`` comments (anywhere in the file); ``repro lint
--expect`` checks emitted codes against them.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.pragma import ast_nodes as A
from repro.pragma.parser import _Parser
from repro.pragma.lexer import TokenKind
from repro.util.errors import OmpSyntaxError

_EXPECT_RE = re.compile(r"//\s*expect:\s*((?:SL\d{3}[\s,]*)+)")
_CODE_RE = re.compile(r"SL\d{3}")


@dataclass
class DirectiveStmt:
    """One pragma statement (continuations already joined)."""

    line: int                      # 1-based line of the first pragma line
    text: str                      # joined pragma text, continuations removed
    loop: Optional[Tuple[int, int]] = None   # (lo, hi) of the associated loop
    loop_line: int = 0


@dataclass
class TaskwaitStmt:
    line: int


@dataclass
class OmpProgram:
    """A structurally parsed ``.omp`` listing."""

    path: str = ""
    scalars: Dict[str, int] = field(default_factory=dict)
    arrays: Dict[str, int] = field(default_factory=dict)   # name -> extent
    machine: Optional[int] = None
    #: full ``--machine``-style spec from a ``machine cluster:NxM`` /
    #: ``machine cte-power[:N]`` / ``machine gpus:N`` statement, if any
    machine_spec: Optional[str] = None
    #: ``machine *`` — the program targets *every* machine shape; the
    #: linter quantifies its verdict over all device counts N >= 1
    parametric: bool = False
    #: ``machine cluster:*xG`` — parametric over the node count M >= 1,
    #: with G devices per node; implies ``parametric``
    parametric_group: Optional[int] = None
    statements: List[object] = field(default_factory=list)
    expected_codes: Tuple[str, ...] = ()


def parse_expr_text(text: str) -> A.Expr:
    """Parse one expression with the pragma front end (must consume all)."""
    parser = _Parser(text)
    expr = parser.parse_expr()
    tok = parser.peek()
    if tok.kind is not TokenKind.EOF:
        raise OmpSyntaxError(f"unexpected {tok.text!r} after expression",
                             text, tok.pos)
    return expr


def eval_expr_int(expr: A.Expr, env: Dict[str, int]) -> int:
    """Evaluate an AST expression to an int over an integer environment.

    ``env`` supplies scalar constants and, per chunk, concrete values for
    ``omp_spread_start``/``omp_spread_size``.  Raises :class:`KeyError`
    with the missing name for undefined identifiers.
    """
    if isinstance(expr, A.Num):
        return expr.value
    if isinstance(expr, A.Ident):
        return env[expr.name]
    if isinstance(expr, A.BinOp):
        left = eval_expr_int(expr.left, env)
        right = eval_expr_int(expr.right, env)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        return left * right
    raise TypeError(f"unsupported expression node {expr!r}")


def _join_continuations(lines: List[str]) -> List[Tuple[int, str]]:
    """Join ``\\``-continued lines; returns ``(first_line_no, text)``."""
    out: List[Tuple[int, str]] = []
    i = 0
    while i < len(lines):
        start = i + 1
        text = lines[i]
        while text.rstrip().endswith("\\") and i + 1 < len(lines):
            text = text.rstrip()[:-1] + " " + lines[i + 1]
            i += 1
        out.append((start, text))
        i += 1
    return out


def _strip_comment(text: str) -> str:
    idx = text.find("//")
    return text if idx < 0 else text[:idx]


def parse_program(source: str, path: str = "") -> Tuple[OmpProgram,
                                                        List[Diagnostic]]:
    """Structurally parse a ``.omp`` listing.

    Pragma statements are kept as text — the linter parses them with the
    real front end so syntax/sema findings carry the statement context.
    Structural problems (bad declares, stray ``loop``) come back as
    ``SL003``/``SL101`` diagnostics alongside the partial program.
    """
    program = OmpProgram(path=path)
    diagnostics: List[Diagnostic] = []
    expected: List[str] = []
    for match in _EXPECT_RE.finditer(source):
        expected.extend(_CODE_RE.findall(match.group(1)))
    program.expected_codes = tuple(dict.fromkeys(expected))

    def err(code: str, message: str, line: int, text: str,
            offset: Optional[int] = None) -> None:
        diagnostics.append(Diagnostic(code=code, message=message, path=path,
                                      line=line, source=text.strip(),
                                      offset=offset))

    def eval_scalar(text: str, line: int, stmt_text: str) -> Optional[int]:
        try:
            expr = parse_expr_text(text)
        except OmpSyntaxError as exc:
            err("SL003", f"bad expression: {exc.args[0].splitlines()[0]}",
                line, stmt_text)
            return None
        try:
            return eval_expr_int(expr, program.scalars)
        except KeyError as exc:
            err("SL101", f"undefined identifier {exc.args[0]!r}", line,
                stmt_text)
            return None

    for line_no, raw in _join_continuations(source.splitlines()):
        text = _strip_comment(raw).strip()
        if not text:
            continue
        head = text.split(None, 1)[0]

        if head == "declare":
            rest = text[len("declare"):].strip()
            m = re.fullmatch(r"(\w+)\s*\[\s*(.+?)\s*\]", rest)
            if m:
                extent = eval_scalar(m.group(2), line_no, text)
                if extent is not None:
                    if extent < 0:
                        err("SL003", f"array {m.group(1)!r} has negative "
                            f"extent {extent}", line_no, text)
                    else:
                        program.arrays[m.group(1)] = extent
                continue
            m = re.fullmatch(r"(\w+)\s*=\s*(.+)", rest)
            if m:
                value = eval_scalar(m.group(2), line_no, text)
                if value is not None:
                    program.scalars[m.group(1)] = value
                continue
            err("SL003", "expected 'declare NAME = expr' or "
                "'declare NAME[expr]'", line_no, text)
            continue

        if head == "machine":
            rest = text[len("machine"):].strip()
            if not rest:
                err("SL003", "expected 'machine N', 'machine *' or "
                    "'machine SPEC'", line_no, text)
                continue
            if rest == "*":
                # machine-parametric program: verified for all N >= 1
                program.parametric = True
                continue
            m = re.fullmatch(r"cluster:\*x(\d+)", rest, re.IGNORECASE)
            if m:
                # cluster-parametric: all node counts M >= 1, G GPUs each
                group = int(m.group(1))
                if group < 1:
                    err("SL003", "cluster:*xG needs G >= 1", line_no, text)
                    continue
                program.parametric = True
                program.parametric_group = group
                continue
            if ":" in rest or rest.lower() == "cte-power":
                # a --machine-style topology spec (cluster:NxM, cte-power:N,
                # gpus:N); resolve the device count for range checks
                try:
                    from repro.sim.topology import parse_machine_spec
                    topo = parse_machine_spec(rest)
                except ValueError as exc:
                    err("SL003", str(exc), line_no, text)
                    continue
                program.machine_spec = rest
                program.machine = topo.num_devices
                continue
            value = eval_scalar(rest, line_no, text)
            if value is not None:
                if value < 1:
                    err("SL003", f"machine needs at least 1 device, got "
                        f"{value}", line_no, text)
                else:
                    program.machine = value
            continue

        if head == "taskwait":
            if text != "taskwait":
                err("SL003", "taskwait takes no arguments", line_no, text)
            program.statements.append(TaskwaitStmt(line=line_no))
            continue

        if head.startswith("loop"):
            m = re.fullmatch(r"loop\s*\(\s*(.+?)\s*:\s*(.+?)\s*\)", text)
            if not m:
                err("SL003", "expected 'loop(start : length)'", line_no, text)
                continue
            prev = program.statements[-1] if program.statements else None
            if not isinstance(prev, DirectiveStmt) or prev.loop is not None:
                err("SL003", "loop(...) must directly follow an executable "
                    "directive", line_no, text)
                continue
            lo = eval_scalar(m.group(1), line_no, text)
            length = eval_scalar(m.group(2), line_no, text)
            if lo is None or length is None:
                continue
            if length < 0:
                err("SL003", f"loop length is negative ({length})",
                    line_no, text)
                continue
            prev.loop = (lo, lo + length)
            prev.loop_line = line_no
            continue

        if head in ("#pragma", "pragma", "omp") or text.startswith("#"):
            program.statements.append(DirectiveStmt(line=line_no, text=text))
            continue

        err("SL003", f"unrecognized statement {head!r}", line_no, text)

    return program, diagnostics
