"""Whole-program static analysis and dynamic race checking.

Two complementary tools over the directive stack:

* :mod:`repro.analysis.linter` — **spreadlint**, a static pass suite over
  whole directive programs (the ``.omp`` mini-language of
  :mod:`repro.analysis.program`).  Section arithmetic is evaluated per
  chunk into :class:`~repro.util.intervals.Interval` footprints to find
  chunk-level and directive-level races, map-flow mistakes and broken
  ``depend`` graphs before anything runs.

* :mod:`repro.analysis.sanitizer` — an Archer/TSan-style **race
  sanitizer** for the runtime: per-chunk interval access footprints are
  recorded against the happens-before order of the task graph, and
  conflicting unordered accesses are reported with device/directive
  provenance.  Enable with ``OpenMPRuntime(sanitize=True)``,
  ``repro somier --sanitize`` or ``REPRO_SANITIZE=1``.

Diagnostic codes, severities and the exit-code contract are documented in
``docs/static-analysis.md``.

Attribute access is lazy (PEP 562) so that runtime modules can import
:mod:`repro.analysis.sanitizer` without dragging the pragma/spread front
end (and its import graph) in behind them.
"""

from __future__ import annotations

_EXPORTS = {
    "CATALOG": "repro.analysis.diagnostics",
    "Diagnostic": "repro.analysis.diagnostics",
    "Severity": "repro.analysis.diagnostics",
    "LintMachine": "repro.analysis.linter",
    "lint_machine_for": "repro.analysis.linter",
    "lint_program": "repro.analysis.linter",
    "lint_source": "repro.analysis.linter",
    "resolve_lint_machine": "repro.analysis.linter",
    "OmpProgram": "repro.analysis.program",
    "parse_program": "repro.analysis.program",
    "RaceReport": "repro.analysis.sanitizer",
    "RaceSanitizer": "repro.analysis.sanitizer",
    "resolve_sanitize": "repro.analysis.sanitizer",
    "LintVerdict": "repro.analysis.symbolic",
    "lint_source_verdict": "repro.analysis.symbolic",
    "machine_cutoff": "repro.analysis.symbolic",
    "DiffSummary": "repro.analysis.diffcheck",
    "run_diffcheck": "repro.analysis.diffcheck",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
