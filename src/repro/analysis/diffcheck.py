"""Differential verification: the static linter vs the runtime sanitizer.

The linter claims to *prove* race-freedom; the runtime's interval race
sanitizer *observes* races during simulated execution.  This module
closes the loop between them: seeded random ``.omp`` programs are both
linted and executed across a sample of machine shapes, and the verdicts
are compared per shape:

* **unsoundness** (fatal): the linter reports no error at a shape, but
  executing the program there either trips the race sanitizer or crashes
  the runtime.  A single such disagreement means a lint pass is wrong —
  ``repro lint-fuzz`` exits non-zero.
* **imprecision** (candidate): the linter reports a race (SL2xx/SL3xx)
  that execution never confirms at any shape.  Expected occasionally —
  the linter's happens-before model is deliberately coarser than the
  engine's (e.g. it does not exploit per-device queue ordering) — so
  these are only counted, not failed.

The generator sticks to the statically analyzable fragment (static
schedules, no depend clauses, a final ``taskwait``) and biases toward
halo'd sections and ``nowait`` so genuine races and §V-B extension
violations appear regularly in the stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.diagnostics import Severity
from repro.analysis.linter import lint_machine_for, lint_program
from repro.analysis.program import (DirectiveStmt, TaskwaitStmt,
                                    parse_program)
from repro.device.kernel import KernelSpec
from repro.openmp.mapping import Var
from repro.openmp.runtime import OpenMPRuntime
from repro.pragma import ast_nodes as A
from repro.pragma.codegen import execute_pragma
from repro.pragma.parser import parse_pragma
from repro.sim.topology import parse_machine_spec

_D = A.DirectiveKind

#: machine shapes every fuzzed program is checked on
DEFAULT_SHAPES = ("cte-power:1", "cte-power:2", "cte-power:4", "cluster:2x2")

#: lint codes that assert a data race
RACE_CODES = ("SL201", "SL202", "SL301", "SL302")

_KERNEL_KINDS = (_D.TARGET, _D.TARGET_TEAMS_DPF, _D.TARGET_SPREAD,
                 _D.TARGET_SPREAD_TEAMS_DPF)

_OWN = "[omp_spread_start : omp_spread_size]"
_HALO = "[omp_spread_start - 1 : omp_spread_size + 2]"


# -- program generator --------------------------------------------------------


def generate_program(seed: int) -> str:
    """One seeded random ``.omp`` program in the analyzable fragment."""
    rng = random.Random(seed)
    n = rng.choice([32, 48, 64])
    chunk = rng.choice([8, 16])
    names = ["u", "v", "w"]
    devices = rng.choice(["devices(0,1)", "devices(0,1,2,3)", "devices(*)"])
    lines = [f"// lint-fuzz seed {seed}", f"declare N = {n}"]
    lines += [f"declare {name}[N + 2]" for name in names]
    lines.append("")

    resident = rng.random() < 0.5
    halo_enter = rng.random() < 0.5
    if resident:
        maps = " ".join(
            f"map(to: {name}{_HALO if halo_enter else _OWN})"
            for name in names)
        lines.append(f"#pragma omp target enter data spread {devices} "
                     f"range(1 : N) chunk_size({chunk}) {maps}")
        lines.append("")

    for _ in range(rng.randint(1, 3)):
        read, write = rng.sample(names, 2)
        read_sec = _HALO if rng.random() < 0.5 else _OWN
        write_sec = _HALO if rng.random() < 0.15 else _OWN
        nowait = "nowait " if rng.random() < 0.35 else ""
        lines.append(
            "#pragma omp target spread teams distribute parallel for "
            f"{devices} spread_schedule(static, {chunk}) {nowait}"
            f"map(to: {read}{read_sec}) map(from: {write}{write_sec})")
        lines.append("loop(1 : N)")
        lines.append("")
        if rng.random() < 0.3:
            lines.append("taskwait")
            lines.append("")

    if rng.random() < 0.3:
        name = rng.choice(names)
        direction = rng.choice(["from", "to"])
        lines.append(f"#pragma omp target update spread {devices} "
                     f"range(1 : N) chunk_size({chunk}) "
                     f"{direction}({name}{_OWN})")
        lines.append("")

    if resident:
        maps = " ".join(
            [f"map(from: {names[0]}{_OWN})"]
            + [f"map(release: {name}{_HALO if halo_enter else _OWN})"
               for name in names[1:]])
        lines.append(f"#pragma omp target exit data spread {devices} "
                     f"range(1 : N) chunk_size({chunk}) {maps}")
        lines.append("")
    lines.append("taskwait")
    return "\n".join(lines) + "\n"


# -- execution ----------------------------------------------------------------


def _noop_body(lo: int, hi: int, env) -> None:
    return None


_NOOP = KernelSpec("lint-fuzz-noop", _noop_body)


def drive_program(rt: OpenMPRuntime, program) -> None:
    """Run a parsed :class:`OmpProgram` on *rt*: arrays become zeroed
    host buffers, kernels get a no-op body (the sanitizer and cost model
    watch the *maps*, not the arithmetic)."""
    arrays = {name: Var(name, np.zeros(extent))
              for name, extent in program.arrays.items()}
    symbols: Dict[str, object] = dict(arrays)
    symbols.update(program.scalars)

    def host_program(omp):
        for stmt in program.statements:
            if isinstance(stmt, TaskwaitStmt):
                yield from omp.taskwait()
                continue
            assert isinstance(stmt, DirectiveStmt)
            directive = parse_pragma(stmt.text)
            body = _NOOP if directive.kind in _KERNEL_KINDS else None
            yield from execute_pragma(omp, stmt.text, symbols, body=body,
                                      loop=stmt.loop)

    rt.run(host_program)


def execute_source(source: str, shape: str) -> Tuple[int, Optional[str]]:
    """Run one ``.omp`` listing on the simulated runtime at *shape* with
    the race sanitizer armed; returns ``(race_count, error)``."""
    program, structural = parse_program(source)
    if structural:
        return 0, f"structural: {structural[0].message}"
    rt = OpenMPRuntime(topology=parse_machine_spec(shape), sanitize="on",
                       trace_enabled=False)
    try:
        drive_program(rt, program)
    except Exception as exc:            # noqa: BLE001 - classify, don't die
        return (len(rt.sanitizer.reports) if rt.sanitizer else 0,
                f"{type(exc).__name__}: {exc}")
    return (len(rt.sanitizer.reports) if rt.sanitizer else 0), None


# -- comparison ---------------------------------------------------------------


@dataclass
class ShapeOutcome:
    """Linter vs runtime on one program at one machine shape."""

    shape: str
    lint_errors: List[str]
    lint_races: List[str]
    runtime_races: int
    runtime_error: Optional[str]

    @property
    def unsound(self) -> bool:
        """Lint-clean but execution raced or crashed: a linter bug."""
        return not self.lint_errors and (
            self.runtime_races > 0 or self.runtime_error is not None)

    @property
    def race_confirmed(self) -> bool:
        return self.runtime_races > 0 or self.runtime_error is not None

    def to_dict(self) -> dict:
        return {
            "shape": self.shape,
            "lint_errors": list(self.lint_errors),
            "lint_races": list(self.lint_races),
            "runtime_races": self.runtime_races,
            "runtime_error": self.runtime_error,
            "unsound": self.unsound,
        }


@dataclass
class ProgramResult:
    seed: int
    source: str
    outcomes: List[ShapeOutcome] = field(default_factory=list)

    @property
    def unsound(self) -> bool:
        return any(o.unsound for o in self.outcomes)

    @property
    def imprecise(self) -> bool:
        """The linter asserted a race somewhere, execution confirmed it
        nowhere — an imprecision candidate, not a failure."""
        asserted = any(o.lint_races for o in self.outcomes)
        confirmed = any(o.race_confirmed for o in self.outcomes
                        if o.lint_races)
        return asserted and not confirmed


@dataclass
class DiffSummary:
    count: int
    shapes: List[str]
    results: List[ProgramResult]

    @property
    def unsound(self) -> List[ProgramResult]:
        return [r for r in self.results if r.unsound]

    @property
    def imprecise(self) -> List[ProgramResult]:
        return [r for r in self.results if r.imprecise]

    @property
    def ok(self) -> bool:
        return not self.unsound

    def render(self) -> str:
        lines = [f"lint-fuzz: {self.count} programs x "
                 f"{len(self.shapes)} shapes "
                 f"({', '.join(self.shapes)})",
                 f"  unsound disagreements: {len(self.unsound)}",
                 f"  imprecision candidates: {len(self.imprecise)}"]
        for result in self.unsound:
            bad = next(o for o in result.outcomes if o.unsound)
            lines.append(
                f"  UNSOUND seed {result.seed} at {bad.shape}: "
                f"{bad.runtime_races} race(s), "
                f"error={bad.runtime_error!r}, "
                f"lint said {bad.lint_errors or 'clean'}")
        return "\n".join(lines)


def check_program(source: str, seed: int = 0,
                  shapes: Sequence[str] = DEFAULT_SHAPES) -> ProgramResult:
    """Lint and execute one program at every shape."""
    result = ProgramResult(seed=seed, source=source)
    for shape in shapes:
        program, structural = parse_program(source)
        diags = lint_program(program, structural,
                             machine=lint_machine_for(shape))
        errors = sorted({d.code for d in diags
                         if d.severity is Severity.ERROR})
        races = sorted({d.code for d in diags if d.code in RACE_CODES})
        run_races, run_error = execute_source(source, shape)
        result.outcomes.append(ShapeOutcome(
            shape=shape, lint_errors=errors, lint_races=races,
            runtime_races=run_races, runtime_error=run_error))
    return result


def run_diffcheck(seed: int = 0, count: int = 50,
                  shapes: Sequence[str] = DEFAULT_SHAPES) -> DiffSummary:
    """Generate *count* programs from *seed* and compare verdicts."""
    results = [check_program(generate_program(seed + i), seed=seed + i,
                             shapes=shapes)
               for i in range(count)]
    return DiffSummary(count=count, shapes=list(shapes), results=results)
