"""Interval-based dynamic race sanitizer (Archer/TSan for spread programs).

When enabled, the runtime records the **host-array footprint** of every
device operation it submits — one access per map clause, with
``to``/``tofrom`` sections counted as reads of the host array and
``from``/``tofrom`` sections as writes — and checks each new footprint
against every earlier access it is not ordered after.  Two accesses to
overlapping sections of the same array, at least one of them a write,
with no happens-before path between them, are reported as a
:class:`RaceReport` with full device/directive provenance.

Happens-before tracking
-----------------------

Every recorded operation gets one bit in a shared bitmask space; a
process's :attr:`~repro.sim.engine.Process.san_clock` is the OR of the
bits it is ordered after.  Order is established exactly where the runtime
establishes it:

* **seeding** — when a task is submitted, its clock starts as the
  submitter's closure joined with the closure of every event in its
  wait-set (``depend`` edges, per-buffer in-flight waits);
* **joins** — the engine's ``san_hook`` fires whenever a process resumes
  from a completed event (``taskwait``, ``all_of``, region barriers) and
  ORs the event's closure into the process.

A process's *closure* is its clock plus the bits of every operation it
recorded itself (``_proc_closure``), which makes same-process program
order and dynamic-schedule worker loops fall out for free.  Waiting on a
process that has not finished yet (a ``depend`` edge onto an in-flight
``nowait`` task) is remembered as a *pending* ordering — "ordered after
everything that process will ever record" — which is exactly the
semantics of joining its completion event.

Checks happen at **submit time**, in deterministic program order, so
reports are stable run to run; the sanitizer never touches the event
heap, never allocates events, and performs only integer ORs on the hot
path, which keeps sanitized runs bit-identical (results *and* traces) to
unsanitized ones.

``strict`` mode additionally raises
:class:`~repro.util.errors.DataRaceError` at the end of
:meth:`~repro.openmp.runtime.OpenMPRuntime.run`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.sim.engine import AllOf, AnyOf, Event, Process
from repro.util.errors import OmpRuntimeError
from repro.util.intervals import Interval, IntervalSet

#: one recorded host-array access: (var name, interval, is_write)
Access = Tuple[str, Interval, bool]


def resolve_sanitize(sanitize) -> Optional[str]:
    """Normalize the ``sanitize`` runtime argument against REPRO_SANITIZE.

    Returns ``None`` (off), ``"on"`` (record and report) or ``"strict"``
    (also raise :class:`DataRaceError` at the end of the run).  A ``None``
    argument consults the ``REPRO_SANITIZE`` environment variable, so test
    suites can sanitize whole runs without touching call sites.
    """
    if sanitize is None:
        env = os.environ.get("REPRO_SANITIZE", "").strip().lower()
        if env in ("", "0", "off", "false"):
            return None
        sanitize = env
    if sanitize is False:
        return None
    if sanitize is True:
        return "on"
    if isinstance(sanitize, str):
        mode = sanitize.strip().lower()
        if mode in ("", "0", "off", "false"):
            return None
        if mode in ("1", "on", "true", "yes"):
            return "on"
        if mode == "strict":
            return "strict"
        raise OmpRuntimeError(
            f"sanitize={sanitize!r}: expected one of True/False/'on'/"
            "'strict'")
    raise OmpRuntimeError(
        f"sanitize={sanitize!r}: expected a bool, a mode string or None")


def accesses_from_maps(concrete_maps, resident=()) -> List[Access]:
    """Host-array access footprint of an op, from its concrete maps.

    The map type alone determines the host side of every directive the
    runtime submits: ``to``/``tofrom`` read the host section (copy-in),
    ``from``/``tofrom`` write it (copy-back), ``alloc``/``release``/
    ``delete`` move no bytes.  ``target update`` ops arrive here through
    the pseudo to/from maps their plans already carry.

    ``resident`` holds the indices of maps whose section is already
    present on the target device at submit time: their copy-in is a
    present hit that never reads the host, so no read is recorded.  Only
    meaningful for ops whose copy-in is presence-conditional (kernels and
    enters) — ``target update`` copies unconditionally.
    """
    out: List[Access] = []
    for i, (clause, interval) in enumerate(concrete_maps):
        if interval.empty:
            continue
        map_type = clause.map_type
        if map_type.copies_in and i not in resident:
            out.append((clause.var.name, interval, False))
        if map_type.copies_out:
            out.append((clause.var.name, interval, True))
    return out


def standalone_accesses(concrete_maps, lo: int, hi: int) -> List[Access]:
    """Host footprint of a failed-over *standalone* kernel op.

    A chunk re-routed off a lost device runs self-contained against a
    scratch environment (``kernel_op(standalone=True)``): *every* map
    copies in from the host regardless of type, and the implicit exit
    copies back each map's intersection with the chunk's owned range
    ``[lo, hi)`` — owned rows only, never halos.
    """
    owned = Interval(lo, hi)
    out: List[Access] = []
    for clause, interval in concrete_maps:
        if interval.empty:
            continue
        out.append((clause.var.name, interval, False))
        back = interval.intersection(owned)
        if not back.empty:
            out.append((clause.var.name, back, True))
    return out


@dataclass(frozen=True)
class RaceReport:
    """One pair of conflicting, unordered accesses."""

    var: str
    overlap: Interval
    first_name: str
    first_device: Optional[int]
    first_directive: Optional[int]
    first_write: bool
    second_name: str
    second_device: Optional[int]
    second_directive: Optional[int]
    second_write: bool

    def render(self) -> str:
        def side(name, device, directive, write):
            kind = "write" if write else "read"
            where = f"device {device}" if device is not None else "host"
            directive_part = (f", directive #{directive}"
                              if directive is not None else "")
            return f"{kind} by {name!r} ({where}{directive_part})"

        return (f"data race on {self.var}{self.overlap}: "
                + side(self.first_name, self.first_device,
                       self.first_directive, self.first_write)
                + " is unordered with "
                + side(self.second_name, self.second_device,
                       self.second_directive, self.second_write))

    def to_dict(self) -> dict:
        return {
            "var": self.var,
            "overlap": [self.overlap.start, self.overlap.stop],
            "first": {"name": self.first_name, "device": self.first_device,
                      "directive": self.first_directive,
                      "write": self.first_write},
            "second": {"name": self.second_name,
                       "device": self.second_device,
                       "directive": self.second_directive,
                       "write": self.second_write},
        }


class _Record:
    """One access in a variable's frontier."""

    __slots__ = ("bit", "ancestors", "pending", "owner", "interval", "write",
                 "device", "directive", "name")

    def __init__(self, bit, ancestors, pending, owner, interval, write,
                 device, directive, name):
        self.bit = bit
        self.ancestors = ancestors
        self.pending = pending
        self.owner = owner
        self.interval = interval
        self.write = write
        self.device = device
        self.directive = directive
        self.name = name


class RaceSanitizer:
    """Records op footprints and reports happens-before violations."""

    def __init__(self, rt=None, strict: bool = False):
        self.rt = rt
        self.strict = strict
        self.reports: List[RaceReport] = []
        self.ops_recorded = 0
        self.access_checks = 0
        self._next_bit = 1
        self._frontier: Dict[str, List[_Record]] = {}
        self._proc_closure: Dict[Process, int] = {}
        self._proc_pending: Dict[Process, FrozenSet[Process]] = {}
        self._seen_pairs: set = set()
        # Submit-order residency: sections the data directives have
        # entered, per (device, var).  ``kernel_accesses`` consults this
        # besides the present table because depend-ordered prefetch
        # enters (§IX data_depend) are submitted nowait — they have not
        # populated the present table yet when the kernel is submitted,
        # but they are ordered before it, so its copy-in is still a
        # present hit that never reads the host.
        self._entered: Dict[Tuple[int, str], "IntervalSet"] = {}

    # -- engine wiring -------------------------------------------------------

    def install(self, sim) -> None:
        sim.san_hook = self.on_join

    def on_join(self, proc: Process, event: Event) -> None:
        """Engine hook: *proc* resumed from completed *event* (HB join)."""
        proc.san_clock |= self.closure_of(event)

    def closure_of(self, event: Event) -> int:
        """The record bits ordered before anyone who joins *event*."""
        if isinstance(event, Process):
            return event.san_clock | self._proc_closure.get(event, 0)
        if isinstance(event, AllOf):
            clock = 0
            for child in event.events:
                clock |= self.closure_of(child)
            return clock
        if isinstance(event, AnyOf):
            clock = 0
            for child in event.events:
                if child.processed:
                    clock |= self.closure_of(child)
            return clock
        return 0

    def seed(self, proc: Process, parent: Optional[Process],
             waits: Sequence[Event] = ()) -> None:
        """Initialize a new task's clock at submit time.

        The task is ordered after its submitter's history and after every
        event in its wait-set.  Waits on processes that have not finished
        yet are kept as *pending* orderings: the task is ordered after
        everything those processes will ever record.
        """
        clock = 0
        pending: set = set()
        if parent is not None:
            clock |= self.closure_of(parent)
            pending |= self._proc_pending.get(parent, frozenset())
        for event in waits:
            clock |= self.closure_of(event)
            for wait_proc in self._procs_of(event):
                if not wait_proc.processed:
                    pending.add(wait_proc)
                    pending |= self._proc_pending.get(wait_proc, frozenset())
        proc.san_clock |= clock
        if pending:
            self._proc_pending[proc] = frozenset(pending)

    def _procs_of(self, event: Event):
        if isinstance(event, Process):
            yield event
        elif isinstance(event, AllOf):
            for child in event.events:
                yield from self._procs_of(child)

    # -- submit-order residency ----------------------------------------------

    def note_enter(self, device: int, concrete_maps) -> None:
        """A data directive submitted an enter of these sections."""
        for clause, interval in concrete_maps:
            if not interval.empty:
                self._entered.setdefault(
                    (device, clause.var.name), IntervalSet()).add(interval)

    def note_exit(self, device: int, concrete_maps) -> None:
        """A data directive submitted an exit of these sections."""
        for clause, interval in concrete_maps:
            if interval.empty:
                continue
            entered = self._entered.get((device, clause.var.name))
            if entered is not None:
                entered.remove(interval)

    def entered_covers(self, device: int, var_name: str,
                       interval: Interval) -> bool:
        """Was *interval* fully entered on *device*, in submit order?"""
        entered = self._entered.get((device, var_name))
        return entered is not None and entered.covers(interval)

    # -- recording -----------------------------------------------------------

    def record_op(self, proc: Process, accesses: Sequence[Access],
                  device: Optional[int] = None,
                  directive: Optional[int] = None, name: str = "") -> None:
        """Record one submitted op's footprint and check it for races.

        Must be called right after the op's task is submitted (and seeded),
        in program order — which is what makes reports deterministic.
        """
        if not accesses:
            return
        self.ops_recorded += 1
        ancestors = proc.san_clock | self._proc_closure.get(proc, 0)
        pending = self._proc_pending.get(proc, frozenset())
        bit = self._next_bit
        self._next_bit <<= 1
        checks = 0
        for var, interval, write in accesses:
            frontier = self._frontier.setdefault(var, [])
            survivors: List[_Record] = []
            for rec in frontier:
                checks += 1
                # rec.bit == bit: two accesses of the same op (a tofrom's
                # read and write) are one logical operation, not a race.
                ordered = (rec.bit == bit or bool(rec.bit & ancestors)
                           or rec.owner in pending)
                if (not ordered and rec.interval.overlaps(interval)
                        and (rec.write or write)
                        and not self._race_ordered(rec, proc)):
                    self._report(rec, proc, interval, var, write, device,
                                 directive, name, bit)
                if (write and ordered
                        and interval.contains(rec.interval)):
                    # Covered by an ordered newer write: any future
                    # conflict is transitively enforced through us.
                    continue
                survivors.append(rec)
            survivors.append(_Record(
                bit=bit, ancestors=ancestors, pending=pending, owner=proc,
                interval=interval, write=write, device=device,
                directive=directive, name=name))
            self._frontier[var] = survivors
        self.access_checks += checks
        self._proc_closure[proc] = self._proc_closure.get(proc, 0) | bit
        rt = self.rt
        if rt is not None and rt.tools:
            from repro.obs.tool import SANITIZER_OP

            rt.tools.dispatch(SANITIZER_OP, device=device, name=name,
                              directive=directive, accesses=len(accesses),
                              checks=checks, time=rt.sim.now)

    def _race_ordered(self, rec: _Record, proc: Process) -> bool:
        """Reverse direction: was the *existing* record seeded while
        waiting on the new op's owner (record order ≠ execution order,
        e.g. a task depending on a still-running dynamic worker)?"""
        return proc in rec.pending

    def _report(self, rec: _Record, proc: Process, interval: Interval,
                var: str, write: bool, device, directive, name: str,
                bit: int) -> None:
        pair = (rec.bit, bit)
        if pair in self._seen_pairs:
            return
        self._seen_pairs.add(pair)
        report = RaceReport(
            var=var, overlap=rec.interval.intersection(interval),
            first_name=rec.name, first_device=rec.device,
            first_directive=rec.directive, first_write=rec.write,
            second_name=name, second_device=device,
            second_directive=directive, second_write=write)
        self.reports.append(report)
        rt = self.rt
        if rt is not None and rt.tools:
            from repro.obs.tool import SANITIZER_RACE

            rt.tools.dispatch(SANITIZER_RACE, var=var,
                              overlap=(report.overlap.start,
                                       report.overlap.stop),
                              first=report.first_name,
                              second=report.second_name,
                              device=device, directive=directive,
                              time=rt.sim.now)

    # -- reporting -----------------------------------------------------------

    @property
    def races(self) -> int:
        return len(self.reports)

    def summary(self) -> str:
        if not self.reports:
            return (f"race sanitizer: no races in {self.ops_recorded} "
                    f"recorded ops ({self.access_checks} access checks)")
        lines = [f"race sanitizer: {len(self.reports)} race(s) in "
                 f"{self.ops_recorded} recorded ops:"]
        lines.extend("  " + report.render() for report in self.reports)
        return "\n".join(lines)
