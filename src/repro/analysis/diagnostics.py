"""Diagnostic model of the spreadlint static analyzer.

Every finding is a :class:`Diagnostic` with a stable ``SLnnn`` code drawn
from :data:`CATALOG`.  Codes are grouped by family:

===== ======================================================================
Range Family
===== ======================================================================
SL0xx front-end: the program or a pragma failed to parse / sema-check
SL1xx symbols and bounds: undefined names, out-of-bounds sections, devices
SL2xx intra-directive races: conflicting chunk footprints of one spread
SL3xx inter-directive races: unordered directives with conflicting footprints
SL4xx map flow: use-before-map, illegal extension, dead ``to``, redundant
      release
SL5xx depend graph: forward (unsatisfiable) dependences, dead sinks
SL6xx static performance smells (cost-model driven): transfer-bound
      spreads, halos crossing the inter-node network, redundant update
      round-trips, unfused latency-bound transfers
SL7xx cluster/resilience: failover-unsafe chunk writes, dynamic schedule
      over the network, device-memory overcommit
===== ======================================================================

The exit-code contract of ``repro lint`` is derived from severities: any
``error`` diagnostic → exit 1; only warnings (or nothing) → exit 0; usage
problems → exit 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


#: code -> (severity, one-line summary)
CATALOG = {
    "SL001": (Severity.ERROR, "pragma failed to tokenize or parse"),
    "SL002": (Severity.ERROR, "pragma is semantically ill-formed"),
    "SL003": (Severity.ERROR, "malformed program statement"),
    "SL101": (Severity.ERROR, "undefined identifier in directive expression"),
    "SL102": (Severity.ERROR, "array section out of bounds"),
    "SL103": (Severity.ERROR, "invalid devices clause"),
    "SL104": (Severity.ERROR, "invalid schedule or chunking"),
    "SL105": (Severity.ERROR, "executable directive without associated loop"),
    "SL201": (Severity.ERROR,
              "write-write overlap between chunks of one spread directive"),
    "SL202": (Severity.ERROR,
              "read-write overlap between chunks of one spread directive"),
    "SL301": (Severity.ERROR,
              "unordered write-write conflict between directives"),
    "SL302": (Severity.ERROR,
              "unordered read-write conflict between directives"),
    "SL401": (Severity.ERROR, "use of device data that was never mapped"),
    "SL402": (Severity.ERROR,
              "mapping would extend an already-mapped section"),
    "SL403": (Severity.WARNING,
              "dead 'to' map: section copied to device but never read"),
    "SL404": (Severity.WARNING, "redundant release of unmapped data"),
    "SL501": (Severity.ERROR,
              "dependence on a section produced only by a later directive"),
    "SL502": (Severity.WARNING,
              "dependence sink never produced by any directive"),
    "SL601": (Severity.WARNING,
              "transfer-bound spread: non-resident copy-ins outweigh the "
              "kernel"),
    "SL602": (Severity.WARNING,
              "halo exchange crosses the inter-node network"),
    "SL603": (Severity.WARNING,
              "redundant update round-trip: device copy is already current"),
    "SL604": (Severity.WARNING,
              "per-call transfer latency dominates: consider fuse_transfers"),
    "SL701": (Severity.WARNING,
              "chunk writes outside its owned range: node-loss failover "
              "would corrupt survivors"),
    "SL702": (Severity.WARNING,
              "dynamic schedule on a networked machine"),
    "SL703": (Severity.WARNING,
              "resident footprint overcommits device memory"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding, renderable as text (with caret) or JSON."""

    code: str
    message: str
    path: str = ""
    line: int = 0              # 1-based line of the statement; 0 = whole file
    source: str = ""           # statement text the caret points into
    offset: Optional[int] = None
    length: Optional[int] = None   # span width for a ^~~~ underline
    related: Tuple[str, ...] = field(default=())  # extra context lines

    @property
    def severity(self) -> Severity:
        return CATALOG[self.code][0]

    def render(self) -> str:
        where = self.path or "<input>"
        if self.line:
            where += f":{self.line}"
        lines = [f"{where}: {self.severity.value}: {self.code}: "
                 f"{self.message}"]
        if self.source:
            lines.append(f"  {self.source}")
            if self.offset is not None:
                # Span-clamped caret.  Offsets are computed against the
                # *joined* pragma text, so a clause that started on a
                # backslash-continuation line can carry an offset at (or,
                # with stale sources, past) the end of the rendered text —
                # clamp both the anchor and the underline so the caret
                # always lands under the statement.  The pad mirrors the
                # source's own whitespace (tabs stay tabs) so the anchor
                # stays aligned under tab-indented continuations too.
                off = max(0, min(self.offset, len(self.source)))
                pad = "".join(ch if ch == "\t" else " "
                              for ch in self.source[:off])
                span = self.length if self.length and self.length > 0 else 1
                span = max(1, min(span, len(self.source) - off) if
                           off < len(self.source) else 1)
                lines.append("  " + pad + "^" + "~" * (span - 1))
        lines.extend(f"  note: {note}" for note in self.related)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "source": self.source,
            "offset": self.offset,
            "length": self.length,
            "related": list(self.related),
        }


def worst_severity(diagnostics) -> Optional[Severity]:
    worst = None
    for diag in diagnostics:
        if diag.severity is Severity.ERROR:
            return Severity.ERROR
        worst = Severity.WARNING
    return worst
