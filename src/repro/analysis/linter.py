"""spreadlint: static whole-program analysis of directive listings.

The linter replays a ``.omp`` program (see :mod:`repro.analysis.program`)
through the real pragma front end, evaluates every section's
``omp_spread_start``/``omp_spread_size`` arithmetic **per chunk** into
concrete :class:`~repro.util.intervals.Interval` footprints — the same
chunking the runtime's :class:`~repro.spread.schedule.StaticSchedule`
would produce — and runs four pass families over the result:

* **intra-directive races** (SL2xx): chunks of one spread directive run
  concurrently, so overlapping chunk writes (or a chunk write against a
  sibling chunk read) are schedule-dependent corruption;
* **inter-directive races** (SL3xx): directives not ordered by host
  synchronization (non-``nowait`` completion, ``taskwait``) or a
  ``depend`` edge are concurrent; conflicting whole-directive footprints
  are reported with both lines;
* **map flow** (SL4xx): a reference-counted present-table simulation per
  device catches use-before-map, statically detectable illegal section
  extension (the paper's single-GPU Two Buffers restriction, §V-B),
  dead ``to`` maps and redundant releases;
* **depend graph** (SL5xx): ``in``/``inout`` dependences that no earlier
  directive produces — either produced only *later* (task ordering can
  never satisfy them) or never at all (the clause is dead).

Host-access semantics match the runtime sanitizer
(:mod:`repro.analysis.sanitizer`): ``to``/``tofrom`` sections are host
reads, ``from``/``tofrom`` sections are host writes, ``alloc``/
``release``/``delete`` touch no bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.program import (DirectiveStmt, OmpProgram, TaskwaitStmt,
                                    eval_expr_int, parse_program)
from repro.pragma import ast_nodes as A
from repro.pragma.parser import parse_pragma
from repro.pragma.sema import check_directive
from repro.spread.extensions import Extensions
from repro.spread.schedule import (SpreadSchedule, StaticSchedule,
                                   spread_schedule)
from repro.util.errors import OmpScheduleError, OmpSemaError, OmpSyntaxError
from repro.util.intervals import Interval

_D = A.DirectiveKind

#: sema extensions the simulator supports; lint checks the full language
_LINT_EXTENSIONS = Extensions(schedules=True, data_depend=True)

_KERNEL_KINDS = (_D.TARGET, _D.TARGET_TEAMS_DPF, _D.TARGET_SPREAD,
                 _D.TARGET_SPREAD_TEAMS_DPF)
_ENTER_KINDS = (_D.TARGET_ENTER_DATA, _D.TARGET_ENTER_DATA_SPREAD,
                _D.TARGET_DATA, _D.TARGET_DATA_SPREAD)
_EXIT_KINDS = (_D.TARGET_EXIT_DATA, _D.TARGET_EXIT_DATA_SPREAD)
_UPDATE_KINDS = (_D.TARGET_UPDATE, _D.TARGET_UPDATE_SPREAD)


@dataclass
class _ChunkFoot:
    """Concrete footprint of one chunk of one directive."""

    index: int
    device: Optional[int]           # None for dynamically scheduled chunks
    reads: List[Tuple[str, Interval]] = field(default_factory=list)
    writes: List[Tuple[str, Interval]] = field(default_factory=list)
    #: concrete map sections for the present-table simulation
    maps: List[Tuple[str, str, Interval]] = field(default_factory=list)


@dataclass
class _Node:
    """One analyzed directive occurrence."""

    index: int
    stmt: DirectiveStmt
    directive: A.Directive
    nowait: bool
    chunks: List[_ChunkFoot] = field(default_factory=list)
    #: concrete depend items: (consumes, produces, var, interval)
    deps: List[Tuple[bool, bool, str, Interval]] = field(default_factory=list)

    @property
    def kind(self) -> A.DirectiveKind:
        return self.directive.kind

    def reads(self):
        for chunk in self.chunks:
            yield from chunk.reads

    def writes(self):
        for chunk in self.chunks:
            yield from chunk.writes


@dataclass
class _Entry:
    """Present-table simulation entry (one device, one array section)."""

    var: str
    section: Interval
    refcount: int
    is_to: bool
    node_line: int
    node_text: str
    read_hits: int = 0


class _Linter:
    def __init__(self, program: OmpProgram):
        self.program = program
        self.diagnostics: List[Diagnostic] = []

    # -- helpers -------------------------------------------------------------

    def _diag(self, code: str, message: str, stmt: DirectiveStmt,
              offset: Optional[int] = None, source: Optional[str] = None,
              related: Sequence[str] = ()) -> None:
        text = source if source is not None else _pragma_text(stmt.text)
        self.diagnostics.append(Diagnostic(
            code=code, message=message, path=self.program.path,
            line=stmt.line, source=text, offset=offset,
            related=tuple(related)))

    def _env(self, chunk=None) -> Dict[str, int]:
        env = dict(self.program.scalars)
        if chunk is not None:
            env["omp_spread_start"] = chunk.interval.start
            env["omp_spread_size"] = len(chunk.interval)
        return env

    def _eval(self, expr: A.Expr, stmt: DirectiveStmt, what: str,
              chunk=None) -> Optional[int]:
        try:
            return eval_expr_int(expr, self._env(chunk))
        except KeyError as exc:
            self._diag("SL101", f"undefined identifier {exc.args[0]!r} "
                       f"in {what}", stmt)
            return None

    def _section_interval(self, section: A.SectionNode, stmt: DirectiveStmt,
                          chunk=None) -> Optional[Interval]:
        """Concretize one section for one chunk; SL101/SL102 on failure."""
        extent = self.program.arrays.get(section.name)
        if extent is None:
            self._diag("SL101", f"undefined array {section.name!r}", stmt,
                       offset=section.pos)
            return None
        if section.whole_array:
            return Interval(0, extent)
        start = self._eval(section.start, stmt, f"section of {section.name}",
                           chunk)
        length = self._eval(section.length, stmt,
                            f"section of {section.name}", chunk)
        if start is None or length is None:
            return None
        if length < 0 or start < 0 or start + length > extent:
            where = (f" at chunk {chunk.index} "
                     f"(omp_spread_start={chunk.interval.start}, "
                     f"omp_spread_size={len(chunk.interval)})"
                     if chunk is not None else "")
            self._diag("SL102",
                       f"section {section.name}[{start}:{start + length}] "
                       f"outside array extent {extent}{where}", stmt,
                       offset=section.pos)
            return None
        return Interval(start, start + length)

    # -- per-directive lowering ----------------------------------------------

    def _devices(self, directive: A.Directive,
                 stmt: DirectiveStmt) -> Optional[List[int]]:
        clause = directive.find(A.DevicesClause)
        if clause is None:
            # single-device directives: device(n) or default device 0
            dev_clause = directive.find(A.DeviceClause)
            if dev_clause is None:
                return [0]
            device = self._eval(dev_clause.device, stmt, "device clause")
            if device is None:
                return None
            devices = [device]
            pos = dev_clause.pos
        else:
            devices = []
            for expr in clause.devices:
                value = self._eval(expr, stmt, "devices clause")
                if value is None:
                    return None
                devices.append(value)
            pos = clause.pos
        seen: Set[int] = set()
        for device in devices:
            if device < 0 or (self.program.machine is not None
                              and device >= self.program.machine):
                self._diag("SL103", f"device id {device} out of range "
                           f"(machine has {self.program.machine} devices)",
                           stmt, offset=pos)
                return None
            if device in seen:
                self._diag("SL103", f"duplicate device id {device}", stmt,
                           offset=pos)
                return None
            seen.add(device)
        return devices

    def _schedule(self, directive: A.Directive,
                  stmt: DirectiveStmt) -> Optional[SpreadSchedule]:
        clause = directive.find(A.SpreadScheduleClause)
        if clause is None:
            return StaticSchedule()
        chunk = None
        if clause.chunk is not None:
            chunk = self._eval(clause.chunk, stmt, "spread_schedule clause")
            if chunk is None:
                return None
        try:
            return spread_schedule(clause.kind, chunk)
        except OmpScheduleError as exc:
            self._diag("SL104", str(exc), stmt, offset=clause.pos)
            return None

    def _data_chunking(self, directive: A.Directive, stmt: DirectiveStmt,
                       devices: List[int]):
        range_clause = directive.find(A.RangeClause)
        chunk_clause = directive.find(A.ChunkSizeClause)
        start = self._eval(range_clause.start, stmt, "range clause")
        length = self._eval(range_clause.length, stmt, "range clause")
        size = self._eval(chunk_clause.chunk, stmt, "chunk_size clause")
        if start is None or length is None or size is None:
            return None
        if length < 0:
            self._diag("SL104", f"range({start}:{length}): negative length",
                       stmt, offset=range_clause.pos)
            return None
        try:
            return StaticSchedule(size).chunks(start, start + length, devices)
        except OmpScheduleError as exc:
            self._diag("SL104", str(exc), stmt, offset=chunk_clause.pos)
            return None

    def _chunk_list(self, directive: A.Directive,
                    stmt: DirectiveStmt) -> Optional[list]:
        kind = directive.kind
        devices = self._devices(directive, stmt)
        if devices is None:
            return None
        if kind in _KERNEL_KINDS:
            if kind.is_spread:
                if stmt.loop is None:
                    self._diag("SL105", "spread directive needs an "
                               "associated loop(start : length) statement",
                               stmt)
                    return None
                schedule = self._schedule(directive, stmt)
                if schedule is None:
                    return None
                try:
                    return schedule.chunks(stmt.loop[0], stmt.loop[1],
                                           devices)
                except OmpScheduleError as exc:
                    self._diag("SL104", str(exc), stmt)
                    return None
            # single-device kernel: one chunk spanning the loop (or a
            # degenerate point when no loop was given — maps carry no
            # spread symbols here, so the interval is unused)
            loop = stmt.loop or (0, 0)
            from repro.spread.schedule import Chunk
            return [Chunk(index=0, interval=Interval(loop[0], loop[1]),
                          device=devices[0])]
        if kind.is_spread:
            return self._data_chunking(directive, stmt, devices)
        from repro.spread.schedule import Chunk
        return [Chunk(index=0, interval=Interval(0, 0), device=devices[0])]

    def _build_node(self, index: int, stmt: DirectiveStmt) -> Optional[_Node]:
        text = _pragma_text(stmt.text)
        try:
            directive = parse_pragma(stmt.text)
        except OmpSyntaxError as exc:
            self._diag("SL001", _first_line(exc), stmt, offset=exc.offset,
                       source=exc.source or text)
            return None
        try:
            check_directive(directive, extensions=_LINT_EXTENSIONS)
        except OmpSemaError as exc:
            self._diag("SL002", _first_line(exc), stmt, offset=exc.offset,
                       source=exc.source or text)
            return None
        chunks = self._chunk_list(directive, stmt)
        if chunks is None:
            return None
        node = _Node(index=index, stmt=stmt, directive=directive,
                     nowait=directive.find(A.NowaitClause) is not None)
        for chunk in chunks:
            foot = _ChunkFoot(index=chunk.index, device=chunk.device)
            spread_chunk = chunk if directive.kind.is_spread else None
            for clause in directive.find_all(A.MapClauseNode):
                for item in clause.items:
                    interval = self._section_interval(item, stmt,
                                                      spread_chunk)
                    if interval is None:
                        continue
                    foot.maps.append((clause.map_type, item.name, interval))
                    if clause.map_type in ("to", "tofrom"):
                        foot.reads.append((item.name, interval))
                    if clause.map_type in ("from", "tofrom"):
                        foot.writes.append((item.name, interval))
            for clause in directive.find_all(A.MotionClause):
                for item in clause.items:
                    interval = self._section_interval(item, stmt,
                                                      spread_chunk)
                    if interval is None:
                        continue
                    kind = "to" if clause.direction == "to" else "from"
                    foot.maps.append((f"update_{kind}", item.name, interval))
                    if clause.direction == "to":
                        foot.reads.append((item.name, interval))
                    else:
                        foot.writes.append((item.name, interval))
            node.chunks.append(foot)
            for clause in directive.find_all(A.DependClause):
                for item in clause.items:
                    interval = self._section_interval(item, stmt,
                                                      spread_chunk)
                    if interval is None:
                        continue
                    consumes = clause.kind in ("in", "inout")
                    produces = clause.kind in ("out", "inout")
                    node.deps.append((consumes, produces, item.name,
                                      interval))
        return node

    # -- pass: intra-directive chunk races (SL2xx) ---------------------------

    def _check_intra(self, node: _Node) -> None:
        if len(node.chunks) < 2:
            return
        reported: Set[Tuple[str, str]] = set()
        for i, a in enumerate(node.chunks):
            for b in node.chunks[i + 1:]:
                for var, wa in a.writes:
                    for wvar, wb in b.writes:
                        if var == wvar and wa.overlaps(wb):
                            key = ("SL201", var)
                            if key in reported:
                                continue
                            reported.add(key)
                            self._diag(
                                "SL201",
                                f"chunks {a.index} and {b.index} both write "
                                f"{var}{wa} and {var}{wb}; spread chunks "
                                "run concurrently", node.stmt)
                for (ra, wb_) in ((a.reads, b.writes), (b.reads, a.writes)):
                    for var, r in ra:
                        for wvar, w in wb_:
                            if var == wvar and r.overlaps(w):
                                key = ("SL202", var)
                                if key in reported:
                                    continue
                                reported.add(key)
                                self._diag(
                                    "SL202",
                                    f"one chunk reads {var}{r} while a "
                                    f"sibling chunk writes {var}{w}; spread "
                                    "chunks run concurrently", node.stmt)

    # -- pass: inter-directive races (SL3xx) ---------------------------------

    @staticmethod
    def _dep_conflict(earlier: _Node, later: _Node) -> bool:
        for (_, e_prod, e_var, e_iv) in earlier.deps:
            for (l_cons, l_prod, l_var, l_iv) in later.deps:
                if e_var != l_var or not e_iv.overlaps(l_iv):
                    continue
                if e_prod or l_prod:
                    return True
        return False

    def _check_inter(self, nodes: List[_Node],
                     order: List[object]) -> None:
        hb: Dict[int, Set[int]] = {}
        joined: Set[int] = set()
        seen: List[_Node] = []
        for stmt_obj in order:
            if isinstance(stmt_obj, TaskwaitStmt):
                joined = {n.index for n in seen}
                continue
            node = stmt_obj
            direct: Set[int] = set(joined)
            for earlier in seen:
                if not earlier.nowait or self._dep_conflict(earlier, node):
                    direct.add(earlier.index)
            closure = set(direct)
            for idx in direct:
                closure |= hb.get(idx, set())
            hb[node.index] = closure
            for earlier in seen:
                if earlier.index in closure:
                    continue
                self._conflict_between(earlier, node)
            seen.append(node)

    def _conflict_between(self, earlier: _Node, later: _Node) -> None:
        e_writes = list(earlier.writes())
        l_writes = list(later.writes())
        note = (f"conflicts with '{_pragma_text(earlier.stmt.text)}' "
                f"(line {earlier.stmt.line}); order them with depend "
                "clauses or a taskwait")
        for var, wa in e_writes:
            for lvar, wb in l_writes:
                if var == lvar and wa.overlaps(wb):
                    self._diag("SL301",
                               f"both this directive and line "
                               f"{earlier.stmt.line} write {var}"
                               f"{wa.intersection(wb)} with no ordering "
                               "between them", later.stmt, related=(note,))
                    return
        for (reads, writes) in ((earlier.reads(), l_writes),
                                (later.reads(), e_writes)):
            for var, r in reads:
                for wvar, w in writes:
                    if var == wvar and r.overlaps(w):
                        self._diag(
                            "SL302",
                            f"{var}{r.intersection(w)} is read and written "
                            f"by unordered directives (lines "
                            f"{earlier.stmt.line} and {later.stmt.line})",
                            later.stmt, related=(note,))
                        return

    # -- pass: map flow (SL4xx) ----------------------------------------------

    def _check_map_flow(self, nodes: List[_Node]) -> None:
        tables: Dict[int, List[_Entry]] = {}
        pragma_of = {n.index: _pragma_text(n.stmt.text) for n in nodes}

        def entries(device: int) -> List[_Entry]:
            return tables.setdefault(device, [])

        def find(device: int, var: str,
                 section: Interval) -> Optional[_Entry]:
            for entry in entries(device):
                if entry.var == var and entry.section.contains(section):
                    return entry
            return None

        def find_extension(device: int, var: str,
                           section: Interval) -> Optional[_Entry]:
            for entry in entries(device):
                if (entry.var == var and section.overlaps(entry.section)
                        and not entry.section.contains(section)):
                    return entry
            return None

        def retire(device: int, entry: _Entry) -> None:
            entries(device).remove(entry)
            if entry.is_to and entry.read_hits == 0:
                self.diagnostics.append(Diagnostic(
                    code="SL403",
                    message=f"{entry.var}{entry.section} is copied to "
                            f"device {device} but no kernel reads it before "
                            "it is unmapped",
                    path=self.program.path, line=entry.node_line,
                    source=entry.node_text))

        for node in nodes:
            kind = node.kind
            for chunk in node.chunks:
                device = chunk.device
                for map_type, var, section in chunk.maps:
                    if kind in _ENTER_KINDS:
                        if device is None or section.empty:
                            continue
                        hit = find(device, var, section)
                        if hit is not None:
                            hit.refcount += 1
                            continue
                        ext_entry = find_extension(device, var, section)
                        if ext_entry is not None:
                            self._diag(
                                "SL402",
                                f"mapping {var}{section} on device {device} "
                                f"would extend the mapped section "
                                f"{var}{ext_entry.section}; OpenMP forbids "
                                "extending a present array section",
                                node.stmt)
                            continue
                        entries(device).append(_Entry(
                            var=var, section=section, refcount=1,
                            is_to=map_type in ("to", "tofrom"),
                            node_line=node.stmt.line,
                            node_text=pragma_of[node.index]))
                    elif kind in _KERNEL_KINDS:
                        if device is None or section.empty:
                            continue
                        hit = find(device, var, section)
                        if hit is not None:
                            if map_type in ("to", "tofrom"):
                                hit.read_hits += 1
                            continue
                        ext_entry = find_extension(device, var, section)
                        if ext_entry is not None:
                            self._diag(
                                "SL402",
                                f"the kernel's map of {var}{section} on "
                                f"device {device} would extend the mapped "
                                f"section {var}{ext_entry.section}",
                                node.stmt)
                    elif kind in _EXIT_KINDS:
                        if device is None or section.empty:
                            continue
                        hit = find(device, var, section)
                        if hit is None:
                            if map_type == "from":
                                self._diag(
                                    "SL401",
                                    f"copy-back of {var}{section} from "
                                    f"device {device}, but that section "
                                    "was never mapped", node.stmt)
                            else:
                                self._diag(
                                    "SL404",
                                    f"{map_type} of {var}{section} on "
                                    f"device {device}, but that section is "
                                    "not mapped", node.stmt)
                            continue
                        if map_type == "delete":
                            retire(device, hit)
                            continue
                        hit.refcount -= 1
                        if hit.refcount <= 0:
                            retire(device, hit)
                    elif kind in _UPDATE_KINDS:
                        if device is None or section.empty:
                            continue
                        if find(device, var, section) is None:
                            direction = ("to" if map_type == "update_to"
                                         else "from")
                            self._diag(
                                "SL401",
                                f"update {direction}({var}{section}) on "
                                f"device {device} requires the section to "
                                "be mapped first", node.stmt)
                # Halo'd sections of one directive landing on the same
                # device overlap-extend each other — the single-GPU
                # restriction of paper §V-B.
            if kind in _ENTER_KINDS or kind in _KERNEL_KINDS:
                self._check_same_device_extension(node)

        for device, lst in tables.items():
            for entry in list(lst):
                if entry.is_to and entry.read_hits == 0:
                    self.diagnostics.append(Diagnostic(
                        code="SL403",
                        message=f"{entry.var}{entry.section} is copied to "
                                f"device {device} but never read by any "
                                "kernel",
                        path=self.program.path, line=entry.node_line,
                        source=entry.node_text))

    def _check_same_device_extension(self, node: _Node) -> None:
        reported: Set[Tuple[int, str]] = set()
        by_device: Dict[int, List[Tuple[str, Interval]]] = {}
        for chunk in node.chunks:
            if chunk.device is None:
                continue
            for map_type, var, section in chunk.maps:
                if map_type in ("release", "delete") or section.empty:
                    continue
                for prev_var, prev in by_device.get(chunk.device, ()):
                    if (prev_var == var and section.overlaps(prev)
                            and not (prev.contains(section)
                                     or section.contains(prev))):
                        key = (chunk.device, var)
                        if key in reported:
                            continue
                        reported.add(key)
                        self._diag(
                            "SL402",
                            f"two chunks of this directive map overlapping "
                            f"sections of {var} ({prev} and {section}) on "
                            f"device {chunk.device}; overlapping sections "
                            "cannot coexist on one device (paper §V-B)",
                            node.stmt)
                by_device.setdefault(chunk.device, []).append((var, section))

    # -- pass: depend graph (SL5xx) ------------------------------------------

    def _check_depend_graph(self, nodes: List[_Node]) -> None:
        for i, node in enumerate(nodes):
            for (consumes, produces, var, interval) in node.deps:
                if not consumes or produces:
                    # pure out deps always register; an inout with no
                    # earlier producer legally becomes the first producer
                    continue
                earlier = any(
                    e_prod and e_var == var and e_iv.overlaps(interval)
                    for prev in nodes[:i]
                    for (_, e_prod, e_var, e_iv) in prev.deps)
                if earlier:
                    continue
                later_line = next(
                    (nxt.stmt.line for nxt in nodes[i + 1:]
                     for (_, l_prod, l_var, l_iv) in nxt.deps
                     if l_prod and l_var == var and l_iv.overlaps(interval)),
                    None)
                if later_line is not None:
                    self._diag(
                        "SL501",
                        f"depend(in: {var}{interval}) is produced only by a "
                        f"later directive (line {later_line}); task "
                        "dependences only look backward, so this ordering "
                        "can never be satisfied", node.stmt)
                else:
                    self._diag(
                        "SL502",
                        f"depend(in: {var}{interval}) is never produced by "
                        "any directive; the clause has no effect",
                        node.stmt)
                break  # one report per directive is enough

    # -- driver --------------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        nodes: List[_Node] = []
        order: List[object] = []
        for stmt in self.program.statements:
            if isinstance(stmt, TaskwaitStmt):
                order.append(stmt)
                continue
            node = self._build_node(len(nodes), stmt)
            if node is None:
                continue
            nodes.append(node)
            order.append(node)
        for node in nodes:
            self._check_intra(node)
        self._check_inter(nodes, order)
        self._check_map_flow(nodes)
        self._check_depend_graph(nodes)
        return self.diagnostics


def _pragma_text(text: str) -> str:
    # Must mirror parse_pragma's stripping exactly: token offsets are
    # relative to this processed text, so carets stay aligned.
    stripped = text.strip()
    if stripped.startswith("#"):
        stripped = stripped[1:]
    return stripped


def _first_line(exc: Exception) -> str:
    return str(exc).splitlines()[0]


def lint_program(program: OmpProgram,
                 structural: Sequence[Diagnostic] = ()) -> List[Diagnostic]:
    """Run every lint pass over a parsed program."""
    diagnostics = list(structural)
    diagnostics.extend(_sorted_diags(_Linter(program).run()))
    return diagnostics


def _sorted_diags(diags: List[Diagnostic]) -> List[Diagnostic]:
    return sorted(diags, key=lambda d: (d.line, d.code))


def lint_source(source: str, path: str = "") -> List[Diagnostic]:
    """Parse and lint one ``.omp`` listing."""
    program, structural = parse_program(source, path=path)
    return lint_program(program, structural)
