"""spreadlint: static whole-program analysis of directive listings.

The linter replays a ``.omp`` program (see :mod:`repro.analysis.program`)
through the real pragma front end, evaluates every section's
``omp_spread_start``/``omp_spread_size`` arithmetic **per chunk** into
concrete :class:`~repro.util.intervals.Interval` footprints — the same
chunking the runtime's :class:`~repro.spread.schedule.StaticSchedule`
would produce — and runs four pass families over the result:

* **intra-directive races** (SL2xx): chunks of one spread directive run
  concurrently, so overlapping chunk writes (or a chunk write against a
  sibling chunk read) are schedule-dependent corruption;
* **inter-directive races** (SL3xx): directives not ordered by host
  synchronization (non-``nowait`` completion, ``taskwait``) or a
  ``depend`` edge are concurrent; conflicting whole-directive footprints
  are reported with both lines;
* **map flow** (SL4xx): a reference-counted present-table simulation per
  device catches use-before-map, statically detectable illegal section
  extension (the paper's single-GPU Two Buffers restriction, §V-B),
  dead ``to`` maps and redundant releases;
* **depend graph** (SL5xx): ``in``/``inout`` dependences that no earlier
  directive produces — either produced only *later* (task ordering can
  never satisfy them) or never at all (the clause is dead).

Host-access semantics match the runtime sanitizer
(:mod:`repro.analysis.sanitizer`): ``to``/``tofrom`` sections are host
reads, ``from``/``tofrom`` sections are host writes, ``alloc``/
``release``/``delete`` touch no bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.program import (DirectiveStmt, OmpProgram, TaskwaitStmt,
                                    eval_expr_int, parse_program)
from repro.pragma import ast_nodes as A
from repro.pragma.parser import parse_pragma
from repro.pragma.sema import check_directive
from repro.sim.costmodel import CostModel
from repro.spread.extensions import Extensions
from repro.spread.schedule import (DynamicSchedule,
                                   HierarchicalStaticSchedule,
                                   SpreadSchedule, StaticSchedule,
                                   spread_schedule)
from repro.util.errors import OmpScheduleError, OmpSemaError, OmpSyntaxError
from repro.util.intervals import Interval

_D = A.DirectiveKind

#: sema extensions the simulator supports; lint checks the full language
_LINT_EXTENSIONS = Extensions(schedules=True, data_depend=True)

#: bytes per array element the cost lints charge (double precision)
ELEM_BYTES = 8

#: the default lint machine when the program declares none — the paper's
#: 4-GPU CTE-POWER node
DEFAULT_MACHINE_SPEC = "cte-power"


@dataclass
class LintMachine:
    """The machine shape the linter evaluates a program against.

    Bundles the topology (device/link/network layout) with a cost model at
    ``scale=1.0`` — the SL6xx performance lints charge the program's
    *declared* extents directly, unlike the benchmark harness which scales
    a small functional grid up to the paper's 1200-cube.
    """

    spec: str
    topology: object
    cost_model: CostModel
    origin: str = "default"        # "flag" | "program" | "default"

    @property
    def num_devices(self) -> int:
        return self.topology.num_devices

    @property
    def num_nodes(self) -> int:
        return getattr(self.topology, "num_nodes", 1)


def lint_machine_for(spec: str, origin: str = "flag") -> LintMachine:
    """Build a :class:`LintMachine` from a ``--machine`` spec string."""
    from repro.bench.machines import machine_for_spec
    topo, _cm = machine_for_spec(spec)
    return LintMachine(spec=spec, topology=topo,
                       cost_model=CostModel(scale=1.0), origin=origin)


def resolve_lint_machine(program: OmpProgram,
                         machine: Union[None, str, LintMachine] = None
                         ) -> LintMachine:
    """Pick the machine to lint against.

    Precedence: an explicit ``--machine`` argument, then the program's own
    ``machine`` statement (spec or device count), then the paper's 4-GPU
    node.
    """
    if isinstance(machine, LintMachine):
        return machine
    if machine is not None:
        return lint_machine_for(str(machine), origin="flag")
    if program.machine_spec is not None:
        return lint_machine_for(program.machine_spec, origin="program")
    if program.machine is not None:
        return lint_machine_for(f"gpus:{program.machine}", origin="program")
    return lint_machine_for(DEFAULT_MACHINE_SPEC, origin="default")


def node_groups(topology, devices: Sequence[int]) -> List[List[int]]:
    """Group a devices list by cluster node (clause order within a node)."""
    groups: Dict[int, List[int]] = {}
    for d in devices:
        groups.setdefault(topology.node_of(d), []).append(d)
    return [groups[n] for n in sorted(groups)]

_KERNEL_KINDS = (_D.TARGET, _D.TARGET_TEAMS_DPF, _D.TARGET_SPREAD,
                 _D.TARGET_SPREAD_TEAMS_DPF)
_ENTER_KINDS = (_D.TARGET_ENTER_DATA, _D.TARGET_ENTER_DATA_SPREAD,
                _D.TARGET_DATA, _D.TARGET_DATA_SPREAD)
_EXIT_KINDS = (_D.TARGET_EXIT_DATA, _D.TARGET_EXIT_DATA_SPREAD)
_UPDATE_KINDS = (_D.TARGET_UPDATE, _D.TARGET_UPDATE_SPREAD)


@dataclass
class _ChunkFoot:
    """Concrete footprint of one chunk of one directive."""

    index: int
    device: Optional[int]           # None for dynamically scheduled chunks
    interval: Optional[Interval] = None   # the chunk's owned index range
    reads: List[Tuple[str, Interval]] = field(default_factory=list)
    writes: List[Tuple[str, Interval]] = field(default_factory=list)
    #: concrete map sections for the present-table simulation
    maps: List[Tuple[str, str, Interval]] = field(default_factory=list)
    #: actual memcpys the map-flow walk charged: (direction, var, section),
    #: direction in {"h2d", "d2h"} — refcount hits and allocs copy nothing
    copies: List[Tuple[str, str, Interval]] = field(default_factory=list)


@dataclass
class _Node:
    """One analyzed directive occurrence."""

    index: int
    stmt: DirectiveStmt
    directive: A.Directive
    nowait: bool
    schedule: Optional[SpreadSchedule] = None   # kernel-spread schedule used
    chunks: List[_ChunkFoot] = field(default_factory=list)
    #: concrete depend items: (consumes, produces, var, interval)
    deps: List[Tuple[bool, bool, str, Interval]] = field(default_factory=list)

    @property
    def kind(self) -> A.DirectiveKind:
        return self.directive.kind

    def reads(self):
        for chunk in self.chunks:
            yield from chunk.reads

    def writes(self):
        for chunk in self.chunks:
            yield from chunk.writes


@dataclass
class _Entry:
    """Present-table simulation entry (one device, one array section)."""

    var: str
    section: Interval
    refcount: int
    is_to: bool
    node_line: int
    node_text: str
    read_hits: int = 0


class _Linter:
    def __init__(self, program: OmpProgram,
                 machine: Optional[LintMachine] = None):
        self.program = program
        self.machine = machine or resolve_lint_machine(program)
        self.diagnostics: List[Diagnostic] = []
        #: per-device peak resident bytes seen by the map-flow walk, with
        #: the directive at which the peak occurred (for SL703)
        self._resident_peaks: Dict[int, Tuple[float, "_Node"]] = {}

    # -- helpers -------------------------------------------------------------

    def _diag(self, code: str, message: str, stmt: DirectiveStmt,
              offset: Optional[int] = None, source: Optional[str] = None,
              related: Sequence[str] = ()) -> None:
        text = source if source is not None else _pragma_text(stmt.text)
        self.diagnostics.append(Diagnostic(
            code=code, message=message, path=self.program.path,
            line=stmt.line, source=text, offset=offset,
            related=tuple(related)))

    def _env(self, chunk=None) -> Dict[str, int]:
        env = dict(self.program.scalars)
        if chunk is not None:
            env["omp_spread_start"] = chunk.interval.start
            env["omp_spread_size"] = len(chunk.interval)
        return env

    def _eval(self, expr: A.Expr, stmt: DirectiveStmt, what: str,
              chunk=None) -> Optional[int]:
        try:
            return eval_expr_int(expr, self._env(chunk))
        except KeyError as exc:
            self._diag("SL101", f"undefined identifier {exc.args[0]!r} "
                       f"in {what}", stmt)
            return None

    def _section_interval(self, section: A.SectionNode, stmt: DirectiveStmt,
                          chunk=None) -> Optional[Interval]:
        """Concretize one section for one chunk; SL101/SL102 on failure."""
        extent = self.program.arrays.get(section.name)
        if extent is None:
            self._diag("SL101", f"undefined array {section.name!r}", stmt,
                       offset=section.pos)
            return None
        if section.whole_array:
            return Interval(0, extent)
        start = self._eval(section.start, stmt, f"section of {section.name}",
                           chunk)
        length = self._eval(section.length, stmt,
                            f"section of {section.name}", chunk)
        if start is None or length is None:
            return None
        if length < 0 or start < 0 or start + length > extent:
            where = (f" at chunk {chunk.index} "
                     f"(omp_spread_start={chunk.interval.start}, "
                     f"omp_spread_size={len(chunk.interval)})"
                     if chunk is not None else "")
            self._diag("SL102",
                       f"section {section.name}[{start}:{start + length}] "
                       f"outside array extent {extent}{where}", stmt,
                       offset=section.pos)
            return None
        return Interval(start, start + length)

    # -- per-directive lowering ----------------------------------------------

    def _devices(self, directive: A.Directive,
                 stmt: DirectiveStmt) -> Optional[List[int]]:
        clause = directive.find(A.DevicesClause)
        if clause is None:
            # single-device directives: device(n) or default device 0
            dev_clause = directive.find(A.DeviceClause)
            if dev_clause is None:
                return [0]
            device = self._eval(dev_clause.device, stmt, "device clause")
            if device is None:
                return None
            devices = [device]
            pos = dev_clause.pos
        elif clause.all_devices:
            # devices(*): every device of the lint machine
            return list(range(self.machine.num_devices))
        else:
            devices = []
            for expr in clause.devices:
                value = self._eval(expr, stmt, "devices clause")
                if value is None:
                    return None
                devices.append(value)
            pos = clause.pos
        seen: Set[int] = set()
        for device in devices:
            if device < 0 or device >= self.machine.num_devices:
                self._diag("SL103", f"device id {device} out of range "
                           f"(machine has {self.machine.num_devices} "
                           "devices)", stmt, offset=pos)
                return None
            if device in seen:
                self._diag("SL103", f"duplicate device id {device}", stmt,
                           offset=pos)
                return None
            seen.add(device)
        return devices

    def _schedule(self, directive: A.Directive, stmt: DirectiveStmt,
                  devices: List[int]) -> Optional[SpreadSchedule]:
        clause = directive.find(A.SpreadScheduleClause)
        if clause is None:
            # mirror codegen's cluster-aware default: on a multi-node
            # machine, a schedule-less spread over devices on different
            # nodes chunks hierarchically (node-contiguous shares)
            topo = self.machine.topology
            if (self.machine.num_nodes > 1
                    and len({topo.node_of(d) for d in devices}) > 1):
                return HierarchicalStaticSchedule(node_groups(topo, devices))
            return StaticSchedule()
        chunk = None
        if clause.chunk is not None:
            chunk = self._eval(clause.chunk, stmt, "spread_schedule clause")
            if chunk is None:
                return None
        try:
            return spread_schedule(clause.kind, chunk)
        except OmpScheduleError as exc:
            self._diag("SL104", str(exc), stmt, offset=clause.pos)
            return None

    def _data_chunking(self, directive: A.Directive, stmt: DirectiveStmt,
                       devices: List[int]):
        range_clause = directive.find(A.RangeClause)
        chunk_clause = directive.find(A.ChunkSizeClause)
        start = self._eval(range_clause.start, stmt, "range clause")
        length = self._eval(range_clause.length, stmt, "range clause")
        size = self._eval(chunk_clause.chunk, stmt, "chunk_size clause")
        if start is None or length is None or size is None:
            return None
        if length < 0:
            self._diag("SL104", f"range({start}:{length}): negative length",
                       stmt, offset=range_clause.pos)
            return None
        try:
            return StaticSchedule(size).chunks(start, start + length, devices)
        except OmpScheduleError as exc:
            self._diag("SL104", str(exc), stmt, offset=chunk_clause.pos)
            return None

    def _chunk_list(self, directive: A.Directive,
                    stmt: DirectiveStmt) -> Optional[tuple]:
        """``(chunks, schedule)``; schedule is None off the kernel-spread
        path (data spreads always chunk statically)."""
        kind = directive.kind
        devices = self._devices(directive, stmt)
        if devices is None:
            return None
        if kind in _KERNEL_KINDS:
            if kind.is_spread:
                if stmt.loop is None:
                    self._diag("SL105", "spread directive needs an "
                               "associated loop(start : length) statement",
                               stmt)
                    return None
                schedule = self._schedule(directive, stmt, devices)
                if schedule is None:
                    return None
                try:
                    return (schedule.chunks(stmt.loop[0], stmt.loop[1],
                                            devices), schedule)
                except OmpScheduleError as exc:
                    self._diag("SL104", str(exc), stmt)
                    return None
            # single-device kernel: one chunk spanning the loop (or a
            # degenerate point when no loop was given — maps carry no
            # spread symbols here, so the interval is unused)
            loop = stmt.loop or (0, 0)
            from repro.spread.schedule import Chunk
            return ([Chunk(index=0, interval=Interval(loop[0], loop[1]),
                           device=devices[0])], None)
        if kind.is_spread:
            chunks = self._data_chunking(directive, stmt, devices)
            return None if chunks is None else (chunks, None)
        from repro.spread.schedule import Chunk
        return ([Chunk(index=0, interval=Interval(0, 0),
                       device=devices[0])], None)

    def _build_node(self, index: int, stmt: DirectiveStmt) -> Optional[_Node]:
        text = _pragma_text(stmt.text)
        try:
            directive = parse_pragma(stmt.text)
        except OmpSyntaxError as exc:
            self._diag("SL001", _first_line(exc), stmt, offset=exc.offset,
                       source=exc.source or text)
            return None
        try:
            check_directive(directive, extensions=_LINT_EXTENSIONS)
        except OmpSemaError as exc:
            self._diag("SL002", _first_line(exc), stmt, offset=exc.offset,
                       source=exc.source or text)
            return None
        lowered = self._chunk_list(directive, stmt)
        if lowered is None:
            return None
        chunks, schedule = lowered
        node = _Node(index=index, stmt=stmt, directive=directive,
                     nowait=directive.find(A.NowaitClause) is not None,
                     schedule=schedule)
        for chunk in chunks:
            foot = _ChunkFoot(index=chunk.index, device=chunk.device,
                              interval=chunk.interval)
            spread_chunk = chunk if directive.kind.is_spread else None
            for clause in directive.find_all(A.MapClauseNode):
                for item in clause.items:
                    interval = self._section_interval(item, stmt,
                                                      spread_chunk)
                    if interval is None:
                        continue
                    foot.maps.append((clause.map_type, item.name, interval))
                    if clause.map_type in ("to", "tofrom"):
                        foot.reads.append((item.name, interval))
                    if clause.map_type in ("from", "tofrom"):
                        foot.writes.append((item.name, interval))
            for clause in directive.find_all(A.MotionClause):
                for item in clause.items:
                    interval = self._section_interval(item, stmt,
                                                      spread_chunk)
                    if interval is None:
                        continue
                    kind = "to" if clause.direction == "to" else "from"
                    foot.maps.append((f"update_{kind}", item.name, interval))
                    if clause.direction == "to":
                        foot.reads.append((item.name, interval))
                    else:
                        foot.writes.append((item.name, interval))
            node.chunks.append(foot)
            for clause in directive.find_all(A.DependClause):
                for item in clause.items:
                    interval = self._section_interval(item, stmt,
                                                      spread_chunk)
                    if interval is None:
                        continue
                    consumes = clause.kind in ("in", "inout")
                    produces = clause.kind in ("out", "inout")
                    node.deps.append((consumes, produces, item.name,
                                      interval))
        return node

    # -- pass: intra-directive chunk races (SL2xx) ---------------------------

    def _check_intra(self, node: _Node) -> None:
        if len(node.chunks) < 2:
            return
        reported: Set[Tuple[str, str]] = set()
        for i, a in enumerate(node.chunks):
            for b in node.chunks[i + 1:]:
                for var, wa in a.writes:
                    for wvar, wb in b.writes:
                        if var == wvar and wa.overlaps(wb):
                            key = ("SL201", var)
                            if key in reported:
                                continue
                            reported.add(key)
                            self._diag(
                                "SL201",
                                f"chunks {a.index} and {b.index} both write "
                                f"{var}{wa} and {var}{wb}; spread chunks "
                                "run concurrently", node.stmt)
                for (ra, wb_) in ((a.reads, b.writes), (b.reads, a.writes)):
                    for var, r in ra:
                        for wvar, w in wb_:
                            if var == wvar and r.overlaps(w):
                                key = ("SL202", var)
                                if key in reported:
                                    continue
                                reported.add(key)
                                self._diag(
                                    "SL202",
                                    f"one chunk reads {var}{r} while a "
                                    f"sibling chunk writes {var}{w}; spread "
                                    "chunks run concurrently", node.stmt)

    # -- pass: inter-directive races (SL3xx) ---------------------------------

    @staticmethod
    def _dep_conflict(earlier: _Node, later: _Node) -> bool:
        for (_, e_prod, e_var, e_iv) in earlier.deps:
            for (l_cons, l_prod, l_var, l_iv) in later.deps:
                if e_var != l_var or not e_iv.overlaps(l_iv):
                    continue
                if e_prod or l_prod:
                    return True
        return False

    def _check_inter(self, nodes: List[_Node],
                     order: List[object]) -> None:
        hb: Dict[int, Set[int]] = {}
        joined: Set[int] = set()
        seen: List[_Node] = []
        for stmt_obj in order:
            if isinstance(stmt_obj, TaskwaitStmt):
                joined = {n.index for n in seen}
                continue
            node = stmt_obj
            direct: Set[int] = set(joined)
            for earlier in seen:
                if not earlier.nowait or self._dep_conflict(earlier, node):
                    direct.add(earlier.index)
            closure = set(direct)
            for idx in direct:
                closure |= hb.get(idx, set())
            hb[node.index] = closure
            for earlier in seen:
                if earlier.index in closure:
                    continue
                self._conflict_between(earlier, node)
            seen.append(node)

    def _conflict_between(self, earlier: _Node, later: _Node) -> None:
        e_writes = list(earlier.writes())
        l_writes = list(later.writes())
        note = (f"conflicts with '{_pragma_text(earlier.stmt.text)}' "
                f"(line {earlier.stmt.line}); order them with depend "
                "clauses or a taskwait")
        for var, wa in e_writes:
            for lvar, wb in l_writes:
                if var == lvar and wa.overlaps(wb):
                    self._diag("SL301",
                               f"both this directive and line "
                               f"{earlier.stmt.line} write {var}"
                               f"{wa.intersection(wb)} with no ordering "
                               "between them", later.stmt, related=(note,))
                    return
        for (reads, writes) in ((earlier.reads(), l_writes),
                                (later.reads(), e_writes)):
            for var, r in reads:
                for wvar, w in writes:
                    if var == wvar and r.overlaps(w):
                        self._diag(
                            "SL302",
                            f"{var}{r.intersection(w)} is read and written "
                            f"by unordered directives (lines "
                            f"{earlier.stmt.line} and {later.stmt.line})",
                            later.stmt, related=(note,))
                        return

    # -- pass: map flow (SL4xx) ----------------------------------------------

    def _check_map_flow(self, nodes: List[_Node]) -> None:
        tables: Dict[int, List[_Entry]] = {}
        pragma_of = {n.index: _pragma_text(n.stmt.text) for n in nodes}
        #: live resident bytes per device (present-table footprint)
        resident: Dict[int, float] = {}

        def entries(device: int) -> List[_Entry]:
            return tables.setdefault(device, [])

        def note_peak(device: int, total: float, node: _Node) -> None:
            if total > self._resident_peaks.get(device, (0.0, None))[0]:
                self._resident_peaks[device] = (total, node)

        def find(device: int, var: str,
                 section: Interval) -> Optional[_Entry]:
            for entry in entries(device):
                if entry.var == var and entry.section.contains(section):
                    return entry
            return None

        def find_extension(device: int, var: str,
                           section: Interval) -> Optional[_Entry]:
            for entry in entries(device):
                if (entry.var == var and section.overlaps(entry.section)
                        and not entry.section.contains(section)):
                    return entry
            return None

        def retire(device: int, entry: _Entry) -> None:
            entries(device).remove(entry)
            resident[device] = (resident.get(device, 0.0)
                                - len(entry.section) * ELEM_BYTES)
            if entry.is_to and entry.read_hits == 0:
                self.diagnostics.append(Diagnostic(
                    code="SL403",
                    message=f"{entry.var}{entry.section} is copied to "
                            f"device {device} but no kernel reads it before "
                            "it is unmapped",
                    path=self.program.path, line=entry.node_line,
                    source=entry.node_text))

        for node in nodes:
            kind = node.kind
            for chunk in node.chunks:
                device = chunk.device
                transient = 0.0   # per-kernel auto-map bytes, this chunk
                for map_type, var, section in chunk.maps:
                    if kind in _ENTER_KINDS:
                        if device is None or section.empty:
                            continue
                        hit = find(device, var, section)
                        if hit is not None:
                            hit.refcount += 1
                            continue
                        ext_entry = find_extension(device, var, section)
                        if ext_entry is not None:
                            self._diag(
                                "SL402",
                                f"mapping {var}{section} on device {device} "
                                f"would extend the mapped section "
                                f"{var}{ext_entry.section}; OpenMP forbids "
                                "extending a present array section",
                                node.stmt)
                            continue
                        entries(device).append(_Entry(
                            var=var, section=section, refcount=1,
                            is_to=map_type in ("to", "tofrom"),
                            node_line=node.stmt.line,
                            node_text=pragma_of[node.index]))
                        if map_type in ("to", "tofrom"):
                            chunk.copies.append(("h2d", var, section))
                        resident[device] = (resident.get(device, 0.0)
                                            + len(section) * ELEM_BYTES)
                        note_peak(device, resident[device], node)
                    elif kind in _KERNEL_KINDS:
                        if device is None or section.empty:
                            continue
                        hit = find(device, var, section)
                        if hit is not None:
                            if map_type in ("to", "tofrom"):
                                hit.read_hits += 1
                            continue
                        ext_entry = find_extension(device, var, section)
                        if ext_entry is not None:
                            self._diag(
                                "SL402",
                                f"the kernel's map of {var}{section} on "
                                f"device {device} would extend the mapped "
                                f"section {var}{ext_entry.section}",
                                node.stmt)
                            continue
                        # implicit per-kernel auto-map: copied around the
                        # launch, then released — charge the actual memcpys
                        if map_type in ("to", "tofrom"):
                            chunk.copies.append(("h2d", var, section))
                        if map_type in ("from", "tofrom"):
                            chunk.copies.append(("d2h", var, section))
                        transient += len(section) * ELEM_BYTES
                        note_peak(device,
                                  resident.get(device, 0.0) + transient,
                                  node)
                    elif kind in _EXIT_KINDS:
                        if device is None or section.empty:
                            continue
                        hit = find(device, var, section)
                        if hit is None:
                            if map_type == "from":
                                self._diag(
                                    "SL401",
                                    f"copy-back of {var}{section} from "
                                    f"device {device}, but that section "
                                    "was never mapped", node.stmt)
                            else:
                                self._diag(
                                    "SL404",
                                    f"{map_type} of {var}{section} on "
                                    f"device {device}, but that section is "
                                    "not mapped", node.stmt)
                            continue
                        if map_type == "delete":
                            retire(device, hit)
                            continue
                        hit.refcount -= 1
                        if hit.refcount <= 0:
                            if map_type == "from":
                                chunk.copies.append(("d2h", var, section))
                            retire(device, hit)
                    elif kind in _UPDATE_KINDS:
                        if device is None or section.empty:
                            continue
                        if find(device, var, section) is None:
                            direction = ("to" if map_type == "update_to"
                                         else "from")
                            self._diag(
                                "SL401",
                                f"update {direction}({var}{section}) on "
                                f"device {device} requires the section to "
                                "be mapped first", node.stmt)
                        else:
                            chunk.copies.append(
                                ("h2d" if map_type == "update_to"
                                 else "d2h", var, section))
                # Halo'd sections of one directive landing on the same
                # device overlap-extend each other — the single-GPU
                # restriction of paper §V-B.
            if kind in _ENTER_KINDS or kind in _KERNEL_KINDS:
                self._check_same_device_extension(node)

        for device, lst in tables.items():
            for entry in list(lst):
                if entry.is_to and entry.read_hits == 0:
                    self.diagnostics.append(Diagnostic(
                        code="SL403",
                        message=f"{entry.var}{entry.section} is copied to "
                                f"device {device} but never read by any "
                                "kernel",
                        path=self.program.path, line=entry.node_line,
                        source=entry.node_text))

    def _check_same_device_extension(self, node: _Node) -> None:
        reported: Set[Tuple[int, str]] = set()
        by_device: Dict[int, List[Tuple[str, Interval]]] = {}
        for chunk in node.chunks:
            if chunk.device is None:
                continue
            for map_type, var, section in chunk.maps:
                if map_type in ("release", "delete") or section.empty:
                    continue
                for prev_var, prev in by_device.get(chunk.device, ()):
                    if (prev_var == var and section.overlaps(prev)
                            and not (prev.contains(section)
                                     or section.contains(prev))):
                        key = (chunk.device, var)
                        if key in reported:
                            continue
                        reported.add(key)
                        self._diag(
                            "SL402",
                            f"two chunks of this directive map overlapping "
                            f"sections of {var} ({prev} and {section}) on "
                            f"device {chunk.device}; overlapping sections "
                            "cannot coexist on one device (paper §V-B)",
                            node.stmt)
                by_device.setdefault(chunk.device, []).append((var, section))

    # -- pass: static performance smells (SL6xx) -----------------------------

    _KERNEL_SPREADS = (_D.TARGET_SPREAD, _D.TARGET_SPREAD_TEAMS_DPF)

    def _launch_config(self, directive: A.Directive,
                       stmt: DirectiveStmt):
        """``(num_teams, threads_per_team, simd)`` as the cost model sees
        them: a bare ``target spread`` runs one serial host thread per
        device; ``teams distribute parallel for`` saturates unless capped
        by ``num_teams``/``thread_limit``."""
        if directive.kind not in (_D.TARGET_SPREAD_TEAMS_DPF,
                                  _D.TARGET_TEAMS_DPF):
            return 1, 1, False
        teams = threads = None
        clause = directive.find(A.NumTeamsClause)
        if clause is not None:
            teams = self._eval(clause.value, stmt, "num_teams clause")
        clause = directive.find(A.ThreadLimitClause)
        if clause is not None:
            threads = self._eval(clause.value, stmt, "thread_limit clause")
        return teams, threads, True

    def _chunk_transfer_time(self, chunk: _ChunkFoot,
                             directions: Tuple[str, ...]) -> float:
        """Modeled wall time of this chunk's charged memcpys (network hop
        included for devices off the root node, where host arrays live)."""
        cm = self.machine.cost_model
        topo = self.machine.topology
        link = topo.link_of(chunk.device)
        total = 0.0
        for direction, _var, section in chunk.copies:
            if direction not in directions:
                continue
            nbytes = len(section) * ELEM_BYTES
            total += cm.transfer(link, nbytes).total
            if topo.node_of(chunk.device) > 0:
                total += cm.network_transfer(topo.network_spec, nbytes).total
        return total

    def _check_transfer_bound(self, node: _Node) -> None:
        """SL601: worst chunk's copy-in time exceeds its kernel time."""
        if node.kind not in self._KERNEL_SPREADS:
            return
        cm = self.machine.cost_model
        topo = self.machine.topology
        teams, threads, simd = self._launch_config(node.directive, node.stmt)
        worst = None
        for chunk in node.chunks:
            if chunk.device is None or chunk.interval is None:
                continue
            if not any(c[0] == "h2d" for c in chunk.copies):
                continue
            xfer = self._chunk_transfer_time(chunk, ("h2d",))
            spec = topo.device_specs[chunk.device]
            kern = cm.kernel(spec, len(chunk.interval), num_teams=teams,
                             threads_per_team=threads, simd=simd).total
            if worst is None or xfer - kern > worst[0] - worst[1]:
                worst = (xfer, kern, chunk)
        if worst is not None and worst[0] > worst[1]:
            xfer, kern, chunk = worst
            self._diag(
                "SL601",
                f"chunk {chunk.index} (device {chunk.device}) spends "
                f"~{xfer * 1e6:.0f}us copying non-resident data in for a "
                f"~{kern * 1e6:.0f}us kernel; map the data once with "
                "'target enter data spread' and keep it resident",
                node.stmt)

    def _check_unfused(self, node: _Node) -> None:
        """SL604: many small memcpys whose per-call latency dominates."""
        if not node.kind.is_spread:
            return
        if node.directive.find(A.FuseTransfersClause) is not None:
            return
        cm = self.machine.cost_model
        topo = self.machine.topology
        worst = None
        for chunk in node.chunks:
            if chunk.device is None or len(chunk.copies) < 6:
                continue
            latency = wire = 0.0
            for _direction, _var, section in chunk.copies:
                cost = cm.transfer(topo.link_of(chunk.device),
                                   len(section) * ELEM_BYTES)
                latency += cost.latency
                wire += cost.wire_time
            if latency > wire and (worst is None or latency > worst[0]):
                worst = (latency, len(chunk.copies), chunk)
        if worst is not None:
            latency, count, chunk = worst
            self._diag(
                "SL604",
                f"chunk {chunk.index} (device {chunk.device}) issues "
                f"{count} memcpys whose ~{latency * 1e6:.0f}us of per-call "
                "latency exceeds the wire time; add 'fuse_transfers' to "
                "batch them", node.stmt)

    def _check_update_roundtrip(self, nodes: List[_Node]) -> None:
        """SL603: ``update to`` of a section the device already has.

        Tracks per (device, var) sections known host==device (from a
        preceding ``update``); any other directive touching the var
        invalidates conservatively.
        """
        synced: Dict[Tuple[int, str], List[Interval]] = {}
        for node in nodes:
            if node.kind in _UPDATE_KINDS:
                fired = False
                for chunk in node.chunks:
                    if chunk.device is None:
                        continue
                    for map_type, var, section in chunk.maps:
                        if section.empty:
                            continue
                        key = (chunk.device, var)
                        known = synced.setdefault(key, [])
                        if (map_type == "update_to"
                                and any(s.contains(section)
                                        for s in known)):
                            if not fired:
                                self._diag(
                                    "SL603",
                                    f"update to({var}{section}) on device "
                                    f"{chunk.device} re-copies a section "
                                    "that is already in sync (nothing "
                                    "modified it since the last update)",
                                    node.stmt)
                                fired = True
                        else:
                            known.append(section)
            else:
                touched = {var for chunk in node.chunks
                           for _t, var, _s in chunk.maps}
                for key in [k for k in synced if k[1] in touched]:
                    del synced[key]

    # -- pass: cluster and resilience (SL7xx) --------------------------------

    def _check_halo_network(self, node: _Node) -> None:
        """SL602: neighbouring chunks on different nodes share a section."""
        if not node.kind.is_spread:
            return
        topo = self.machine.topology
        for a, b in zip(node.chunks, node.chunks[1:]):
            if a.device is None or b.device is None:
                continue
            na, nb = topo.node_of(a.device), topo.node_of(b.device)
            if na == nb:
                continue
            for _ta, va, sa in a.maps:
                for _tb, vb, sb in b.maps:
                    if va == vb and not sa.empty and sa.overlaps(sb):
                        shared = sa.intersection(sb)
                        self._diag(
                            "SL602",
                            f"halo {va}{shared} is shared by chunks on "
                            f"node {na} and node {nb}, so every exchange "
                            f"crosses node{max(na, nb)}:network; align "
                            "chunking to node boundaries or use a "
                            "hierarchical schedule", node.stmt)
                        return

    def _check_failover(self, node: _Node) -> None:
        """SL701: a chunk writes outside its owned iteration range."""
        if node.kind not in self._KERNEL_SPREADS or len(node.chunks) < 2:
            return
        topo = self.machine.topology
        span = {topo.node_of(c.device) for c in node.chunks
                if c.device is not None}
        if len(span) < 2:
            return
        for chunk in node.chunks:
            if chunk.device is None or chunk.interval is None:
                continue
            for var, w in chunk.writes:
                if not w.empty and not chunk.interval.contains(w):
                    self._diag(
                        "SL701",
                        f"chunk {chunk.index} writes {var}{w} outside its "
                        f"owned range {chunk.interval}; after a node loss, "
                        "failover restores only owned rows, so surviving "
                        "nodes would keep the stale halo", node.stmt)
                    return

    def _check_dynamic_net(self, node: _Node) -> None:
        """SL702: dynamic chunk placement on a networked machine."""
        if isinstance(node.schedule, DynamicSchedule):
            self._diag(
                "SL702",
                "dynamic schedule assigns chunks to devices at run time; "
                f"on a {self.machine.num_nodes}-node machine that makes "
                "chunk-to-node placement unpredictable and routes halos "
                "over the network; prefer a hierarchical static schedule",
                node.stmt)

    def _check_overcommit(self) -> None:
        """SL703: peak resident bytes exceed a device's memory."""
        topo = self.machine.topology
        for device in sorted(self._resident_peaks):
            peak, node = self._resident_peaks[device]
            capacity = topo.device_specs[device].memory_bytes
            if node is not None and peak > capacity:
                self._diag(
                    "SL703",
                    f"resident sections on device {device} peak at "
                    f"~{peak / 1e9:.1f} GB, over its {capacity / 1e9:.0f} GB "
                    "memory; shrink chunk_size or release buffers earlier",
                    node.stmt)

    def _check_perf(self, nodes: List[_Node]) -> None:
        for node in nodes:
            self._check_transfer_bound(node)
            self._check_unfused(node)
        self._check_update_roundtrip(nodes)

    def _check_cluster(self, nodes: List[_Node]) -> None:
        if self.machine.num_nodes > 1:
            for node in nodes:
                self._check_halo_network(node)
                self._check_failover(node)
                self._check_dynamic_net(node)
        self._check_overcommit()

    # -- pass: depend graph (SL5xx) ------------------------------------------

    def _check_depend_graph(self, nodes: List[_Node]) -> None:
        for i, node in enumerate(nodes):
            for (consumes, produces, var, interval) in node.deps:
                if not consumes or produces:
                    # pure out deps always register; an inout with no
                    # earlier producer legally becomes the first producer
                    continue
                earlier = any(
                    e_prod and e_var == var and e_iv.overlaps(interval)
                    for prev in nodes[:i]
                    for (_, e_prod, e_var, e_iv) in prev.deps)
                if earlier:
                    continue
                later_line = next(
                    (nxt.stmt.line for nxt in nodes[i + 1:]
                     for (_, l_prod, l_var, l_iv) in nxt.deps
                     if l_prod and l_var == var and l_iv.overlaps(interval)),
                    None)
                if later_line is not None:
                    self._diag(
                        "SL501",
                        f"depend(in: {var}{interval}) is produced only by a "
                        f"later directive (line {later_line}); task "
                        "dependences only look backward, so this ordering "
                        "can never be satisfied", node.stmt)
                else:
                    self._diag(
                        "SL502",
                        f"depend(in: {var}{interval}) is never produced by "
                        "any directive; the clause has no effect",
                        node.stmt)
                break  # one report per directive is enough

    # -- driver --------------------------------------------------------------

    def run(self) -> List[Diagnostic]:
        nodes: List[_Node] = []
        order: List[object] = []
        for stmt in self.program.statements:
            if isinstance(stmt, TaskwaitStmt):
                order.append(stmt)
                continue
            node = self._build_node(len(nodes), stmt)
            if node is None:
                continue
            nodes.append(node)
            order.append(node)
        for node in nodes:
            self._check_intra(node)
        self._check_inter(nodes, order)
        self._check_map_flow(nodes)
        self._check_depend_graph(nodes)
        self._check_perf(nodes)
        self._check_cluster(nodes)
        return self.diagnostics


def _pragma_text(text: str) -> str:
    # Must mirror parse_pragma's stripping exactly: token offsets are
    # relative to this processed text, so carets stay aligned.
    stripped = text.strip()
    if stripped.startswith("#"):
        stripped = stripped[1:]
    return stripped


def _first_line(exc: Exception) -> str:
    return str(exc).splitlines()[0]


def lint_program(program: OmpProgram,
                 structural: Sequence[Diagnostic] = (),
                 machine: Union[None, str, LintMachine] = None
                 ) -> List[Diagnostic]:
    """Run every lint pass over a parsed program.

    ``machine`` overrides the shape the program is checked against (a
    ``--machine`` spec string or a prebuilt :class:`LintMachine`); by
    default the program's own ``machine`` statement, else the paper's
    4-GPU node, is used.
    """
    diagnostics = list(structural)
    lint_machine = resolve_lint_machine(program, machine)
    diagnostics.extend(_sorted_diags(_Linter(program, lint_machine).run()))
    return diagnostics


def _sorted_diags(diags: List[Diagnostic]) -> List[Diagnostic]:
    return sorted(diags, key=lambda d: (d.line, d.code))


def lint_source(source: str, path: str = "",
                machine: Union[None, str, LintMachine] = None
                ) -> List[Diagnostic]:
    """Parse and lint one ``.omp`` listing."""
    program, structural = parse_program(source, path=path)
    return lint_program(program, structural, machine=machine)
