"""Machine-parametric verification: lint verdicts for *all* machine shapes.

The concrete linter (:mod:`repro.analysis.linter`) proves race-freedom,
map-flow soundness and depend acyclicity for **one** machine.  A program
that declares ``machine *`` (or ``machine cluster:*xG``) asks for more:
a verdict over *every* device count N >= 1 (node count M >= 1).  This
module delivers that through two complementary proof strategies:

**Enumeration + stability (the cutoff theorem).**  Spread chunking is
eventually N-independent: once every chunk owns its own device, adding
devices changes nothing.  For a directive with an explicit
``chunk_size(c)`` over a range of R iterations the chunk list is fixed at
``ceil(R/c)`` chunks; for the default schedule (``size = ceil(R/N)``) the
chunk list stabilizes at N = R (every chunk one iteration).  Literal
``devices(...)`` lists depend on N only through SL103 validity, stable
past the largest id.  The ``gpus:N`` machine family is *uniform* — every
shape uses the same per-device spec and per-socket link calibration — so
once the chunk lists are stable the whole diagnostic set is stable.
Taking K as the maximum per-directive cutoff, linting N = 1..K concretely
*is* a proof for all N >= 1.

**Affine footprints (the symbolic domain).**  When K exceeds the
enumeration cap, programs built from kernel spreads with ``devices(*)``
and sections of the shape ``a[omp_spread_start + α : omp_spread_size + β]``
are checked symbolically: every footprint is an affine expression over the
chunk-start/chunk-size symbols, whose domain is the polytope
``{start >= lo, size >= 1, start + size <= hi}``.  Bounds are checked at
the polytope's vertices; chunk-disjointness reduces to sign conditions on
the affine coefficients evaluated against the *adjacent* chunk (the
worst case, since ``start_{i+1} = start_i + size_i``).  Every proof
obligation that discharges holds for **all** N >= 1; any obligation that
does not (non-affine section, dynamic schedule, depend clauses) degrades
honestly to concrete evaluation at sampled shapes with an explicit
"verified only at sampled shapes" note.

∀-claims cover the error-severity correctness lints (SL1xx–SL5xx).  The
SL6xx/SL7xx performance and resilience *warnings* are genuinely shape-
dependent (a chunk shrinks as N grows), so they are reported per shape
and annotated with the shapes they appeared at.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.linter import (LintMachine, lint_machine_for,
                                   lint_program, resolve_lint_machine)
from repro.analysis.program import (DirectiveStmt, OmpProgram, TaskwaitStmt,
                                    eval_expr_int, parse_program)
from repro.pragma import ast_nodes as A
from repro.pragma.parser import parse_pragma
from repro.pragma.sema import check_directive
from repro.spread.extensions import Extensions
from repro.util.errors import OmpSemaError, OmpSyntaxError

_D = A.DirectiveKind

#: enumeration cap: cutoffs up to this many shapes are proven by
#: exhaustive concrete linting; beyond it the affine prover must carry
#: the obligation (or the verdict degrades to sampled shapes)
ENUMERATION_CAP = 64

#: device counts sampled when neither proof strategy covers the program
SAMPLE_DEVICE_COUNTS = (1, 2, 3, 4, 7, 16)

#: cluster shapes sampled for cluster-parametric fallback
SAMPLE_CLUSTER_SHAPES = ("cluster:1x4", "cluster:2x2", "cluster:4x4")

_EXTENSIONS = Extensions(schedules=True, data_depend=True)

_KERNEL_SPREADS = (_D.TARGET_SPREAD, _D.TARGET_SPREAD_TEAMS_DPF)


@dataclass
class LintVerdict:
    """The outcome of machine-parametric linting.

    ``forall`` is True when ``diagnostics`` is provably the complete
    diagnostic set for *every* machine in ``universe`` (via ``proof``);
    otherwise the verdict covers exactly the ``shapes`` listed.
    """

    universe: str                      # e.g. "gpus:N for all N >= 1"
    forall: bool
    proof: str                         # "enumeration(1..K)+stability" |
    #                                    "affine" | "concrete" | "sampled"
    shapes: List[str] = field(default_factory=list)
    cutoff: Optional[int] = None
    notes: List[str] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not any(d.severity is Severity.ERROR for d in self.diagnostics)

    def to_dict(self) -> dict:
        return {
            "universe": self.universe,
            "forall": self.forall,
            "verdict": "∀N" if self.forall else "sampled",
            "proof": self.proof,
            "shapes": list(self.shapes),
            "cutoff": self.cutoff,
            "notes": list(self.notes),
            "clean": self.clean,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


# -- the cutoff theorem -------------------------------------------------------


def _eval_const(expr: A.Expr, scalars: Dict[str, int]) -> Optional[int]:
    try:
        return eval_expr_int(expr, dict(scalars))
    except (KeyError, TypeError):
        return None


def _directive_cutoff(program: OmpProgram, stmt: DirectiveStmt) -> int:
    """Smallest K such that this directive's chunk list (and SL103
    validity) is identical for every device count N >= K."""
    try:
        directive = parse_pragma(stmt.text)
    except OmpSyntaxError:
        return 1                       # SL001 at every shape
    clause = directive.find(A.DevicesClause)
    if clause is None or not clause.all_devices:
        # literal device ids: N only gates SL103; stable past the max id
        ids = []
        if clause is not None:
            ids = [_eval_const(e, program.scalars) for e in clause.devices]
        dev = directive.find(A.DeviceClause)
        if dev is not None:
            ids.append(_eval_const(dev.device, program.scalars))
        known = [i for i in ids if i is not None]
        return max(known) + 1 if known else 1
    kind = directive.kind
    if kind in _KERNEL_SPREADS:
        span = (stmt.loop[1] - stmt.loop[0]) if stmt.loop else 0
        sched = directive.find(A.SpreadScheduleClause)
        if sched is not None and sched.chunk is not None:
            chunk = _eval_const(sched.chunk, program.scalars)
            if chunk and chunk > 0:
                return max(1, math.ceil(span / chunk))
        return max(1, span)            # default size = ceil(R/N): K = R
    if kind.is_spread:                 # data spread: fixed chunk_size
        rng = directive.find(A.RangeClause)
        csz = directive.find(A.ChunkSizeClause)
        if rng is None or csz is None:
            return 1
        length = _eval_const(rng.length, program.scalars)
        chunk = _eval_const(csz.chunk, program.scalars)
        if length is None or not chunk or chunk <= 0:
            return 1
        return max(1, math.ceil(length / chunk))
    return 1


def machine_cutoff(program: OmpProgram) -> int:
    """The stability cutoff K of the whole program: diagnostics are
    identical for every ``gpus:N`` with N >= K."""
    cutoff = 1
    for stmt in program.statements:
        if isinstance(stmt, DirectiveStmt):
            cutoff = max(cutoff, _directive_cutoff(program, stmt))
    return cutoff


# -- the affine domain --------------------------------------------------------


class NotAffine(Exception):
    """A section expression outside the affine fragment."""


@dataclass(frozen=True)
class Affine:
    """``p*start + q*size + r`` over one chunk's spread symbols."""

    p: int = 0
    q: int = 0
    r: int = 0

    def __add__(self, other: "Affine") -> "Affine":
        return Affine(self.p + other.p, self.q + other.q, self.r + other.r)

    def __sub__(self, other: "Affine") -> "Affine":
        return Affine(self.p - other.p, self.q - other.q, self.r - other.r)

    def scaled(self, k: int) -> "Affine":
        return Affine(self.p * k, self.q * k, self.r * k)

    @property
    def is_const(self) -> bool:
        return self.p == 0 and self.q == 0

    def at(self, start: int, size: int) -> int:
        return self.p * start + self.q * size + self.r

    def extrema(self, lo: int, hi: int) -> Tuple[int, int]:
        """(min, max) over the chunk polytope ``{start >= lo, size >= 1,
        start + size <= hi}`` (assumes hi - lo >= 1); affine functions
        attain extrema at the vertices."""
        corners = [(lo, 1), (lo, hi - lo), (hi - 1, 1)]
        values = [self.at(s, z) for s, z in corners]
        return min(values), max(values)


def affine_of(expr: A.Expr, scalars: Dict[str, int]) -> Affine:
    """Lower a section expression into the affine domain."""
    if isinstance(expr, A.Num):
        return Affine(r=expr.value)
    if isinstance(expr, A.Ident):
        if expr.name == "omp_spread_start":
            return Affine(p=1)
        if expr.name == "omp_spread_size":
            return Affine(q=1)
        if expr.name in scalars:
            return Affine(r=scalars[expr.name])
        raise NotAffine(f"undefined identifier {expr.name!r}")
    if isinstance(expr, A.BinOp):
        left = affine_of(expr.left, scalars)
        right = affine_of(expr.right, scalars)
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if left.is_const:
            return right.scaled(left.r)
        if right.is_const:
            return left.scaled(right.r)
        raise NotAffine("product of two spread-dependent expressions")
    raise NotAffine(f"unsupported expression {expr!r}")


@dataclass
class _Template:
    """One map item's symbolic footprint: section [S, S+L)."""

    var: str
    map_type: str
    S: Affine
    L: Affine

    @property
    def is_read(self) -> bool:
        return self.map_type in ("to", "tofrom")

    @property
    def is_write(self) -> bool:
        return self.map_type in ("from", "tofrom")


def _adjacent_disjoint(a: _Template, b: _Template) -> bool:
    """Prove section *a* of chunk i ends at or before section *b* of
    chunk j > i begins, for every chunk pair of every N.

    With ``start_{i+1} = start_i + size_i`` the adjacent pair is the
    worst case.  ``end_a(i) - begin_b(j)`` expands to
    ``c_st*start_i + c1*size_i + c2*size_j + c0`` — it is nonpositive
    everywhere iff the start coefficient vanishes and the size
    coefficients are nonpositive with the corner value (size = 1) ok.
    """
    end_a = a.S + a.L
    c_st = end_a.p - b.S.p
    if c_st != 0:
        return False
    c1 = end_a.q - b.S.p               # size_i enters via start_j too
    c2 = -b.S.q
    c0 = end_a.r - b.S.r
    return c1 <= 0 and c2 <= 0 and c1 + c2 + c0 <= 0


def _same_chunk_disjoint(a: _Template, b: _Template) -> bool:
    """Prove sections *a* and *b* of the *same* chunk never partially
    overlap: one ends before the other begins, or they are identical."""
    if a.S == b.S and a.L == b.L:
        return True
    for first, second in ((a, b), (b, a)):
        delta = (first.S + first.L) - second.S
        # delta <= 0 for all start (bounded ⇒ coeff must vanish),
        # all size >= 1
        if delta.p == 0 and delta.q <= 0 and delta.q + delta.r <= 0:
            return True
    return False


@dataclass
class _AffineNode:
    stmt: DirectiveStmt
    nowait: bool
    templates: List[_Template]
    lo: int
    hi: int

    def envelopes(self, kind: str) -> Dict[str, Tuple[int, int]]:
        """Concrete per-var footprint envelope [min, max) over all chunks
        of every N (polytope extrema — a superset of any shape's union)."""
        out: Dict[str, Tuple[int, int]] = {}
        for t in self.templates:
            if kind == "read" and not t.is_read:
                continue
            if kind == "write" and not t.is_write:
                continue
            low, _ = t.S.extrema(self.lo, self.hi)
            _, high = (t.S + t.L).extrema(self.lo, self.hi)
            if high <= low:
                continue
            prev = out.get(t.var)
            out[t.var] = ((low, high) if prev is None else
                          (min(prev[0], low), max(prev[1], high)))
        return out


def prove_affine(program: OmpProgram) -> Tuple[bool, str]:
    """Try to prove the program clean of correctness errors for all N.

    Returns ``(proved, reason)``; on failure *reason* names the first
    obligation (or eligibility condition) that did not discharge.
    """
    nodes: List[_AffineNode] = []
    for stmt in program.statements:
        if isinstance(stmt, TaskwaitStmt):
            nodes.append(stmt)         # type: ignore[arg-type]
            continue
        try:
            directive = parse_pragma(stmt.text)
            check_directive(directive, extensions=_EXTENSIONS)
        except (OmpSyntaxError, OmpSemaError) as exc:
            return False, f"line {stmt.line}: front-end error: {exc}"
        if directive.kind not in _KERNEL_SPREADS:
            return False, (f"line {stmt.line}: only kernel spreads are in "
                           "the affine fragment")
        clause = directive.find(A.DevicesClause)
        if clause is None or not clause.all_devices:
            return False, (f"line {stmt.line}: affine proofs require "
                           "devices(*)")
        sched = directive.find(A.SpreadScheduleClause)
        if sched is not None and sched.kind != "static":
            return False, (f"line {stmt.line}: dynamic schedules place "
                           "chunks at run time")
        if directive.find(A.DependClause) is not None:
            return False, (f"line {stmt.line}: depend clauses are outside "
                           "the affine fragment")
        if stmt.loop is None:
            return False, f"line {stmt.line}: spread without a loop"
        lo, hi = stmt.loop
        templates: List[_Template] = []
        for mclause in directive.find_all(A.MapClauseNode):
            for item in mclause.items:
                extent = program.arrays.get(item.name)
                if extent is None:
                    return False, (f"line {stmt.line}: undefined array "
                                   f"{item.name!r}")
                try:
                    if item.whole_array:
                        S, L = Affine(), Affine(r=extent)
                    else:
                        S = affine_of(item.start, program.scalars)
                        L = affine_of(item.length, program.scalars)
                except NotAffine as exc:
                    return False, (f"line {stmt.line}: section of "
                                   f"{item.name!r} is not affine: {exc}")
                templates.append(_Template(item.name, mclause.map_type,
                                           S, L))
        if hi - lo >= 1:
            # obligation: section bounds for every chunk of every N
            for t in templates:
                smin, _ = t.S.extrema(lo, hi)
                lmin, _ = t.L.extrema(lo, hi)
                _, emax = (t.S + t.L).extrema(lo, hi)
                extent = program.arrays[t.var]
                if lmin < 0:
                    return False, (f"line {stmt.line}: section of {t.var!r} "
                                   "can have negative length")
                if smin < 0 or emax > extent:
                    return False, (f"line {stmt.line}: section of {t.var!r} "
                                   f"can leave [0, {extent})")
            # obligation: same-var sections are chunk-disjoint (covers
            # SL201/SL202 races and the §V-B SL402 extension restriction
            # on shapes where two chunks share a device)
            for i, a in enumerate(templates):
                for b in templates[i:]:
                    if a.var != b.var:
                        continue
                    if not (_adjacent_disjoint(a, b)
                            and _adjacent_disjoint(b, a)):
                        return False, (
                            f"line {stmt.line}: sections of {a.var!r} from "
                            "neighbouring chunks can overlap")
                    if a is not b and not _same_chunk_disjoint(a, b):
                        return False, (
                            f"line {stmt.line}: two maps of {a.var!r} in "
                            "one chunk can partially overlap")
        nodes.append(_AffineNode(stmt=stmt,
                                 nowait=directive.find(A.NowaitClause)
                                 is not None,
                                 templates=templates, lo=lo, hi=hi))
    # obligation: no unordered cross-directive conflicts (SL3xx) — nowait
    # directives stay live until a taskwait; non-nowait block the host
    live: List[_AffineNode] = []
    for node in nodes:
        if isinstance(node, TaskwaitStmt):
            live = []
            continue
        for prev in live:
            for mine, theirs in (("write", "write"), ("read", "write"),
                                 ("write", "read")):
                a_env = node.envelopes(mine)
                b_env = prev.envelopes(theirs)
                for var, (alo, ahi) in a_env.items():
                    if var in b_env:
                        blo, bhi = b_env[var]
                        if alo < bhi and blo < ahi:
                            return False, (
                                f"lines {prev.stmt.line} and "
                                f"{node.stmt.line}: unordered directives "
                                f"may conflict on {var!r}")
        if node.nowait:
            live.append(node)
    return True, "all affine obligations discharged"


# -- shape evaluation and merging --------------------------------------------


def _lint_shape(program_source: str, path: str,
                spec: str) -> List[Diagnostic]:
    program, structural = parse_program(program_source, path=path)
    return lint_program(program, structural, machine=lint_machine_for(spec))


def _merge_shapes(per_shape: Sequence[Tuple[str, List[Diagnostic]]]
                  ) -> List[Diagnostic]:
    """Union diagnostics across shapes, keyed by (line, code); findings
    absent at some shapes carry a note naming where they appeared."""
    all_shapes = [spec for spec, _ in per_shape]
    merged: Dict[Tuple[int, str], Tuple[Diagnostic, List[str]]] = {}
    for spec, diags in per_shape:
        for diag in diags:
            key = (diag.line, diag.code)
            if key in merged:
                merged[key][1].append(spec)
            else:
                merged[key] = (diag, [spec])
    out: List[Diagnostic] = []
    for diag, shapes in merged.values():
        if len(shapes) != len(all_shapes):
            note = f"reported at machine {', '.join(shapes)}"
            diag = replace(diag, related=diag.related + (note,))
        out.append(diag)
    return sorted(out, key=lambda d: (d.line, d.code))


# -- the verdict --------------------------------------------------------------


def lint_source_verdict(source: str, path: str = "",
                        machine: Union[None, str, LintMachine] = None
                        ) -> LintVerdict:
    """Lint a ``.omp`` listing with a machine-parametric verdict.

    ``machine`` (a ``--machine`` spec) forces concrete evaluation at that
    one shape; a parametric program then gets an explicit "verified only
    for this machine" note instead of a ∀ claim.
    """
    program, structural = parse_program(source, path=path)

    if machine is not None or not program.parametric:
        lm = resolve_lint_machine(program, machine)
        diags = lint_program(program, structural, machine=lm)
        notes = []
        if program.parametric:
            notes.append(f"program declares a parametric machine; "
                         f"verified only for this machine ({lm.spec})")
        return LintVerdict(universe=lm.spec, forall=False, proof="concrete",
                           shapes=[lm.spec], notes=notes, diagnostics=diags)

    if program.parametric_group:
        group = program.parametric_group
        universe = f"cluster:Mx{group} for all M >= 1"
        cutoff = machine_cutoff(program)
        if cutoff <= ENUMERATION_CAP:
            shapes = [f"cluster:{m}x{group}" for m in range(1, cutoff + 1)]
            per_shape = [(s, _lint_shape(source, path, s)) for s in shapes]
            return LintVerdict(
                universe=universe, forall=True,
                proof=f"enumeration(1..{cutoff})+stability",
                shapes=shapes, cutoff=cutoff,
                notes=[f"chunk placement is provably identical for every "
                       f"M >= {cutoff}"],
                diagnostics=_merge_shapes(per_shape))
        shapes = list(SAMPLE_CLUSTER_SHAPES)
        per_shape = [(s, _lint_shape(source, path, s)) for s in shapes]
        return LintVerdict(
            universe=universe, forall=False, proof="sampled",
            shapes=shapes, cutoff=cutoff,
            notes=[f"stability cutoff M={cutoff} exceeds the enumeration "
                   f"cap ({ENUMERATION_CAP}); verified only at sampled "
                   "shapes"],
            diagnostics=_merge_shapes(per_shape))

    universe = "gpus:N for all N >= 1"
    cutoff = machine_cutoff(program)
    if cutoff <= ENUMERATION_CAP:
        shapes = [f"gpus:{n}" for n in range(1, cutoff + 1)]
        per_shape = [(s, _lint_shape(source, path, s)) for s in shapes]
        return LintVerdict(
            universe=universe, forall=True,
            proof=f"enumeration(1..{cutoff})+stability",
            shapes=shapes, cutoff=cutoff,
            notes=[f"chunk placement is provably identical for every "
                   f"N >= {cutoff}"],
            diagnostics=_merge_shapes(per_shape))

    proved, reason = prove_affine(program)
    shapes = [f"gpus:{n}" for n in SAMPLE_DEVICE_COUNTS]
    per_shape = [(s, _lint_shape(source, path, s)) for s in shapes]
    merged = _merge_shapes(per_shape)
    if proved and not any(d.severity is Severity.ERROR for d in merged):
        notes = [f"correctness proven for all N >= 1 ({reason})"]
        if any(d.severity is Severity.WARNING for d in merged):
            notes.append("performance warnings evaluated at sampled "
                         "shapes only")
        return LintVerdict(universe=universe, forall=True, proof="affine",
                           shapes=shapes, cutoff=cutoff, notes=notes,
                           diagnostics=merged)
    note = (f"not provable in the affine fragment ({reason}); verified "
            "only at sampled shapes"
            if not proved else
            "affine proof contradicted by a sampled shape; verified only "
            "at sampled shapes")
    return LintVerdict(universe=universe, forall=False, proof="sampled",
                       shapes=shapes, cutoff=cutoff, notes=[note],
                       diagnostics=merged)
