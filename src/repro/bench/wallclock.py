"""Wall-clock benchmark track: host-side launch cost of spread directives.

Everything else in :mod:`repro.bench` reports *virtual* seconds — the
simulator's scientific output.  This module measures **real** seconds: the
Python-side cost of lowering a spread directive (validation, chunking, map/
depend concretization, task submission), which is exactly what the
launch-plan cache (:mod:`repro.spread.plan_cache`) attacks.  It is the
simulated analogue of the libomptarget "launch overhead" microbenchmarks:
the directive under test is issued ``nowait`` against data that is already
present, so the timed region never blocks and never moves bytes — it is
pure host lowering.

Three measurements:

* :func:`launch_microbench` — repeated identical ``target spread teams
  distribute parallel for`` launches against pre-mapped buffers; reports
  cold (first, cache-miss) and warm (steady-state) per-launch cost.
* :func:`end_to_end` — a small Somier run; reports wall seconds and
  timesteps/second.
* :func:`workers_sweep` — the end-to-end run at a kernel-dominated size
  under the parallel host backend (``workers`` = 1, 2, 4); reports the
  wall-clock speedup curve of :mod:`repro.sim.executor`.
* :func:`engine_microbench` — raw calendar-queue throughput (dispatched
  events per real second) over distinct-time and tied-time workloads.
* :func:`analyzer_overhead` — the end-to-end run with tracing on, with and
  without the causal recorder (:mod:`repro.obs.critpath`); reports the
  recording overhead (budget: 5% of traced wall time) and the post-run
  analysis cost.

:func:`run_wallclock` runs all three (the cache benches on and off) and computes the
speedups that ``benchmarks/bench_wallclock.py`` persists to
``BENCH_wallclock.json``.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.bench import machines
from repro.device.kernel import KernelSpec
from repro.openmp import Map, OpenMPRuntime, Var
from repro.sim.topology import cte_power_node
from repro.somier import run_somier
from repro.spread import (
    omp_spread_size,
    omp_spread_start,
    target_enter_data_spread,
    target_exit_data_spread,
    target_spread_teams_distribute_parallel_for,
)

S, Z = omp_spread_start, omp_spread_size


def launch_microbench(plan_cache: bool = True, n: int = 4096,
                      num_devices: int = 4, repeats: int = 30,
                      launches: int = 5,
                      macro_ops: Optional[bool] = None) -> Dict[str, Any]:
    """Per-launch host cost of an identical, already-mapped spread kernel.

    The program maps both arrays across *num_devices* once, then times
    ``repeats`` batches of ``launches`` ``nowait`` launches each.  A
    ``nowait`` static spread never yields, so ``perf_counter`` around the
    batch captures pure host-side lowering; the untimed ``taskwait``
    between batches drains the simulated devices.  Batch 0 is the cold
    (plan-building) sample; the warm figure is the mean of the rest.
    ``macro_ops=False`` keeps the plan cache but replays hits through the
    object path — the ablation arm for the macro-op replay engine.
    """
    rt = OpenMPRuntime(
        topology=cte_power_node(num_devices, memory_bytes=4e9),
        trace_enabled=False, plan_cache=plan_cache, macro_ops=macro_ops)
    devices = list(range(num_devices))
    A, B = np.arange(float(n)), np.zeros(n)
    vA, vB = Var("A", A), Var("B", B)
    kern = KernelSpec("saxpy", lambda lo, hi, env: None)
    samples: List[float] = []

    def program(omp):
        yield from target_enter_data_spread(
            omp, devices, (0, n), None,
            [Map.to(vA, (S, Z)), Map.alloc(vB, (S, Z))])
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(launches):
                yield from target_spread_teams_distribute_parallel_for(
                    omp, kern, 0, n, devices,
                    maps=[Map.to(vA, (S, Z)), Map.from_(vB, (S, Z))],
                    nowait=True)
            samples.append(time.perf_counter() - t0)
            yield from omp.taskwait()
        yield from target_exit_data_spread(
            omp, devices, (0, n), None,
            [Map.release(vA, (S, Z)), Map.from_(vB, (S, Z))])

    rt.run(program)
    warm = samples[1:]
    warm_mean = statistics.mean(warm) / launches
    return {
        "plan_cache": plan_cache,
        "macro_ops": rt.macro_ops,
        "n": n,
        "devices": num_devices,
        "repeats": repeats,
        "launches_per_batch": launches,
        "cold_launch_s": samples[0] / launches,
        "warm_launch_s": warm_mean,
        "warm_launches_per_s": 1.0 / warm_mean if warm_mean else 0.0,
        "warm_launch_min_s": min(warm) / launches,
        "cache_hits": rt.plan_cache.hits,
        "cache_misses": rt.plan_cache.misses,
        "macro_compiles": rt.plan_cache.macro_compiles,
        "macro_replays": rt.plan_cache.macro_replays,
    }


def end_to_end(plan_cache: bool = True, n_functional: int = 24,
               steps: int = 12, gpus: int = 4,
               workers: Optional[int] = None,
               macro_ops: Optional[bool] = None,
               fused_timeline: Optional[bool] = None) -> Dict[str, Any]:
    """Wall seconds of a small Somier run (whole stack, trace off).

    ``fused_timeline=False`` is the ablation arm for the fused-timeline
    engine: macro replay stays on but every chunk and section copy runs
    as a generator process instead of a timeline walker.
    """
    topo, cm = machines.paper_machine(gpus, n_functional=n_functional)
    cfg = machines.paper_somier_config(n_functional=n_functional,
                                       steps=steps)
    t0 = time.perf_counter()
    res = run_somier("one_buffer", cfg, devices=machines.paper_devices(gpus),
                     topology=topo, cost_model=cm, trace=False,
                     plan_cache=plan_cache, macro_ops=macro_ops,
                     fused_timeline=fused_timeline,
                     workers=workers)
    wall = time.perf_counter() - t0
    out = {
        "plan_cache": plan_cache,
        "n_functional": n_functional,
        "steps": steps,
        "gpus": gpus,
        "workers": res.stats["workers"],
        "wall_s": wall,
        "steps_per_s": steps / wall if wall else 0.0,
        "virtual_s": res.elapsed,
        "cache_hits": res.stats["plan_cache_hits"],
        "cache_misses": res.stats["plan_cache_misses"],
        "macro_compiles": res.stats["macro_compiles"],
        "macro_replays": res.stats["macro_replays"],
        "engine_fused_segments": res.stats["engine_fused_segments"],
        "engine_mean_batch": res.stats["engine_mean_batch"],
    }
    for key in ("executor_epochs", "executor_parallel_ops",
                "executor_inline_fallbacks", "executor_inline_small_ops",
                "executor_inline_small_bytes", "executor_min_bytes",
                "executor_utilization"):
        if key in res.stats:
            out[key] = res.stats[key]
    return out


def workers_sweep(workers_list: Sequence[int] = (1, 2, 4),
                  n_functional: int = 96, steps: int = 4,
                  gpus: int = 4, repeats: int = 6) -> Dict[str, Any]:
    """End-to-end wall time vs ``workers`` at a kernel-dominated size.

    Uses a larger functional grid than the cache benchmark so the NumPy
    kernel bodies and ``np.copyto`` payloads (the work the executor
    offloads) dominate over directive lowering.  Speedups are relative to
    ``workers=1`` (serial inline execution); results are bit-identical
    across the sweep by construction, so only wall time varies.

    Repeats are *interleaved* round-robin across the arms and each arm
    takes its best (minimum) wall time: ambient load on a shared host
    varies on multi-second scales, so running one arm's repeats
    back-to-back hands an entire load burst to a single worker count and
    fabricates an inversion.  Round-robin sampling exposes every arm to
    the same load environments and the minimum discards additive noise.
    The executor's size-aware small-op floor (``REPRO_EXECUTOR_MIN_BYTES``,
    deliberately *not* pinned here) keeps sub-floor ops inline, so on a
    single-core host the sweep is expected to be flat rather than
    inverted — ``cpu_count`` is recorded so readers can judge the curve.
    """
    import os

    runs: List[Optional[Dict[str, Any]]] = [None] * len(workers_list)
    for _ in range(max(1, repeats)):
        for i, w in enumerate(workers_list):
            r = end_to_end(True, n_functional=n_functional, steps=steps,
                           gpus=gpus, workers=w)
            if runs[i] is None or r["wall_s"] < runs[i]["wall_s"]:
                runs[i] = r
    base = runs[0]["wall_s"]
    for r in runs:
        r["speedup_vs_1"] = base / r["wall_s"] if r["wall_s"] else 0.0
    return {
        "n_functional": n_functional,
        "steps": steps,
        "gpus": gpus,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "runs": runs,
        "best_speedup": max(r["speedup_vs_1"] for r in runs),
    }


def intervals_bench(n: int = 256, repeats: int = 5,
                    seed: int = 12345) -> Dict[str, Any]:
    """Scalar vs vectorized interval math (:mod:`repro.util.intervals`).

    Times the all-pairs overlap test the executor's wave planner and the
    sanitizer both reduce to: ``n`` pseudo-random byte intervals checked
    pairwise with scalar :meth:`Interval.overlaps` vs one
    :func:`batch_overlap_matrix` call over the packed ``(n, 2)`` array.
    Both paths are asserted to agree before timing; each arm takes the
    min over *repeats*.
    """
    from repro.util.intervals import (
        Interval,
        batch_overlap_matrix,
        pack_intervals,
    )

    rng = np.random.default_rng(seed)
    starts = rng.integers(0, 1 << 20, size=n)
    widths = rng.integers(0, 4096, size=n)  # includes empty intervals
    ivs = [Interval(int(s), int(s + w)) for s, w in zip(starts, widths)]
    packed = pack_intervals(ivs)

    scalar_mat = [[a.overlaps(b) for b in ivs] for a in ivs]
    if not np.array_equal(np.array(scalar_mat),
                          batch_overlap_matrix(packed, packed)):
        raise AssertionError("scalar/vector overlap disagreement")

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    scalar_s = best_of(
        lambda: [[a.overlaps(b) for b in ivs] for a in ivs])
    vector_s = best_of(
        lambda: batch_overlap_matrix(packed, packed))
    pack_s = best_of(lambda: pack_intervals(ivs))
    pairs = n * n
    return {
        "n": n,
        "pairs": pairs,
        "repeats": repeats,
        "scalar_s": scalar_s,
        "vector_s": vector_s,
        "pack_s": pack_s,
        "scalar_pairs_per_s": pairs / scalar_s if scalar_s else 0.0,
        "vector_pairs_per_s": pairs / vector_s if vector_s else 0.0,
        "speedup": scalar_s / vector_s if vector_s else 0.0,
    }


def engine_microbench(events: int = 50000, procs: int = 16,
                      repeats: int = 5) -> Dict[str, Any]:
    """Raw event-engine throughput: dispatched events per real second.

    Two arms over the calendar queue (:class:`repro.sim.engine.Simulator`):

    * **sequential** — ``procs`` generator processes each awaiting a run
      of distinct-time timeouts: the worst case for a calendar queue (one
      heap operation per bucket of one).
    * **ties** — the same event count piled onto few distinct timestamps:
      the case the bucketed queue optimizes (a whole bucket drains per
      heap operation; ``mean_batch`` reports the amortization).

    Each arm takes the best (minimum) wall time over *repeats*; the
    timeout freelist reuse fraction is reported from the final run.
    """
    from repro.sim.engine import Simulator

    per_proc = max(1, events // procs)

    def seq_arm():
        sim = Simulator()

        def proc(offset):
            for _ in range(per_proc):
                yield sim.timeout(1.0 + offset)

        for i in range(procs):
            sim.process(proc(i * 1e-4))
        t0 = time.perf_counter()
        sim.run()
        return time.perf_counter() - t0, sim

    def tie_arm():
        sim = Simulator()

        def proc():
            for _ in range(per_proc):
                yield sim.timeout(1.0)

        for _ in range(procs):
            sim.process(proc())
        t0 = time.perf_counter()
        sim.run()
        return time.perf_counter() - t0, sim

    def best_of(arm):
        best, sim = float("inf"), None
        for _ in range(max(1, repeats)):
            t, s = arm()
            if t < best:
                best, sim = t, s
        return best, sim.engine_stats()

    seq_s, seq_stats = best_of(seq_arm)
    tie_s, tie_stats = best_of(tie_arm)
    n = per_proc * procs
    created = tie_stats["timeouts_created"]
    reused = tie_stats["timeouts_reused"]
    return {
        "events": n,
        "procs": procs,
        "repeats": repeats,
        "seq_s": seq_s,
        "seq_events_per_s": n / seq_s if seq_s else 0.0,
        "seq_mean_batch": seq_stats["mean_batch"],
        "tie_s": tie_s,
        "tie_events_per_s": n / tie_s if tie_s else 0.0,
        "tie_mean_batch": tie_stats["mean_batch"],
        "tie_speedup": seq_s / tie_s if tie_s else 0.0,
        "timeout_reuse_frac":
            reused / (created + reused) if created + reused else 0.0,
    }


#: wall-clock budget for causal edge recording, relative to a traced run
ANALYZER_OVERHEAD_TARGET = 0.05


def analyzer_overhead(runs: int = 3, n_functional: int = 24,
                      steps: int = 12, gpus: int = 4) -> Dict[str, Any]:
    """Wall-clock cost of causal edge recording.

    Both arms trace (analysis requires a trace, so the fair baseline is a
    traced run); the only delta is the causal recorder — process-frontier
    propagation, per-op dependency capture, resource-grant edges.  Both
    arms also pin ``fused_timeline=False``: the causal recorder disengages
    the fused-timeline walkers, so leaving them on in the baseline would
    fold the walker speedup into the "overhead" and misattribute it to
    recording.  Each arm takes the min over *runs* repeats to shed
    scheduler noise.  The post-run analysis itself (critical path,
    attribution, what-if replay) is timed separately: it is pure
    reporting, off the recording hot path.
    """
    topo, cm = machines.paper_machine(gpus, n_functional=n_functional)
    cfg = machines.paper_somier_config(n_functional=n_functional,
                                       steps=steps)
    devices = machines.paper_devices(gpus)

    def best_of(analyze: bool):
        best, res = float("inf"), None
        for _ in range(max(1, runs)):
            t0 = time.perf_counter()
            res = run_somier("one_buffer", cfg, devices=devices,
                             topology=topo, cost_model=cm, trace=True,
                             fused_timeline=False, analyze=analyze)
            best = min(best, time.perf_counter() - t0)
        return best, res

    trace_s, trace_res = best_of(False)
    analyze_s, analyze_res = best_of(True)
    t0 = time.perf_counter()
    analyze_res.runtime.analysis().report()
    analysis_s = time.perf_counter() - t0
    causal = analyze_res.runtime.causal
    return {
        "n_functional": n_functional,
        "steps": steps,
        "gpus": gpus,
        "runs": runs,
        "trace_only_wall_s": trace_s,
        "analyze_wall_s": analyze_s,
        "recording_overhead": (analyze_s / trace_s - 1.0) if trace_s else 0.0,
        "overhead_target": ANALYZER_OVERHEAD_TARGET,
        "analysis_s": analysis_s,
        "events": len(analyze_res.runtime.trace.events),
        "dep_edges": causal.dep_edge_count,
        "res_edges": len(causal.res_edges),
        "virtual_identical": trace_res.elapsed == analyze_res.elapsed,
    }


def run_wallclock(n: int = 4096, num_devices: int = 4, repeats: int = 30,
                  launches: int = 5, n_functional: int = 24,
                  steps: int = 12, workers_list: Sequence[int] = (1, 2, 4),
                  sweep_n_functional: int = 96, sweep_steps: int = 4,
                  analyzer_runs: int = 3,
                  timestamp: Optional[str] = None) -> Dict[str, Any]:
    """The full track: microbench (macro on/off/no-cache) + end-to-end +
    workers sweep + interval math + analyzer."""
    micro_on = launch_microbench(True, n=n, num_devices=num_devices,
                                 repeats=repeats, launches=launches)
    micro_macro_off = launch_microbench(True, n=n, num_devices=num_devices,
                                        repeats=repeats, launches=launches,
                                        macro_ops=False)
    micro_off = launch_microbench(False, n=n, num_devices=num_devices,
                                  repeats=repeats, launches=launches)
    # Interleaved best-of: ambient load varies on multi-second scales, so
    # a single sample per arm can hand one arm an entire load burst and
    # invert the ratio (the workers sweep docstring tells the same story).
    e2e_on = e2e_off = e2e_fused_off = None
    for _ in range(3):
        on = end_to_end(True, n_functional=n_functional, steps=steps)
        off = end_to_end(False, n_functional=n_functional, steps=steps)
        fused_off = end_to_end(True, n_functional=n_functional, steps=steps,
                               fused_timeline=False)
        if e2e_on is None or on["wall_s"] < e2e_on["wall_s"]:
            e2e_on = on
        if e2e_off is None or off["wall_s"] < e2e_off["wall_s"]:
            e2e_off = off
        if e2e_fused_off is None or \
                fused_off["wall_s"] < e2e_fused_off["wall_s"]:
            e2e_fused_off = fused_off
    sweep = workers_sweep(workers_list, n_functional=sweep_n_functional,
                          steps=sweep_steps)
    ivals = intervals_bench()
    engine = engine_microbench()
    analyzer = analyzer_overhead(runs=analyzer_runs,
                                 n_functional=n_functional, steps=steps)
    return {
        "schema": "repro-wallclock-5",
        "timestamp": timestamp,
        "launch_microbench": {"cache_on": micro_on,
                              "macro_off": micro_macro_off,
                              "cache_off": micro_off},
        "end_to_end": {"cache_on": e2e_on, "cache_off": e2e_off,
                       "fused_off": e2e_fused_off},
        "workers_sweep": sweep,
        "intervals": ivals,
        "engine": engine,
        "analyzer_overhead": analyzer,
        "warm_launch_speedup":
            micro_off["warm_launch_s"] / micro_on["warm_launch_s"],
        "warm_macro_speedup":
            micro_macro_off["warm_launch_s"] / micro_on["warm_launch_s"],
        "end_to_end_speedup": e2e_off["wall_s"] / e2e_on["wall_s"],
        "fused_e2e_speedup": e2e_fused_off["wall_s"] / e2e_on["wall_s"],
    }
