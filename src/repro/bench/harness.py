"""Experiment runners shared by the benchmark suite.

Each paper artifact (table/figure) has a ``run_*`` function returning plain
data structures plus formatting helpers producing the same rows the paper
reports, side by side with the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench import machines
from repro.obs.builtin import MetricsTool
from repro.somier import run_somier
from repro.somier.driver import SomierResult
from repro.util.format import format_hms, format_table


@dataclass
class Experiment:
    """One (implementation, device-count) measurement."""

    impl: str
    gpus: int
    result: SomierResult
    paper_seconds: Optional[float] = None

    @property
    def seconds(self) -> float:
        return self.result.elapsed

    @property
    def paper_ratio(self) -> Optional[float]:
        if not self.paper_seconds:
            return None
        return self.seconds / self.paper_seconds

    @property
    def plan_cache_stats(self) -> Tuple[int, int]:
        """(hits, misses) of the spread launch-plan cache for this run."""
        return (int(self.result.stats.get("plan_cache_hits", 0)),
                int(self.result.stats.get("plan_cache_misses", 0)))


def _run_one(impl: str, gpus: int, n_functional: int, steps: int,
             data_depend: bool = False, fuse_transfers: bool = False,
             trace: bool = False, metrics: bool = False,
             plan_cache: bool = True) -> SomierResult:
    topo, cm = machines.paper_machine(gpus, n_functional=n_functional)
    cfg = machines.paper_somier_config(n_functional=n_functional, steps=steps)
    # Tool callbacks never touch virtual time, so metrics=True changes only
    # what is *reported* (SomierResult.metrics), never the elapsed numbers.
    # Likewise plan_cache=False changes host-side lowering work only — the
    # virtual timeline is bit-identical either way (tests assert this).
    tools = (MetricsTool(),) if metrics else ()
    return run_somier(impl, cfg, devices=machines.paper_devices(gpus),
                      topology=topo, cost_model=cm,
                      data_depend=data_depend,
                      fuse_transfers=fuse_transfers, trace=trace,
                      plan_cache=plan_cache,
                      tools=tools)


def run_table1(n_functional: int = 96, steps: int = machines.PAPER_STEPS,
               trace: bool = False, metrics: bool = False) -> List[Experiment]:
    """Table I: One Buffer — target (1 GPU) vs target spread (1/2/4)."""
    rows = [("target", 1), ("one_buffer", 1), ("one_buffer", 2),
            ("one_buffer", 4)]
    out = []
    for impl, gpus in rows:
        result = _run_one(impl, gpus, n_functional, steps, trace=trace,
                          metrics=metrics)
        out.append(Experiment(impl=impl, gpus=gpus, result=result,
                              paper_seconds=machines.PAPER_TABLE1[(impl, gpus)]))
    return out


def run_table2(n_functional: int = 96, steps: int = machines.PAPER_STEPS,
               trace: bool = False, metrics: bool = False) -> List[Experiment]:
    """Table II / Fig. 2: One Buffer vs Two Buffers vs Double Buffering."""
    out = []
    for impl in ("one_buffer", "two_buffers", "double_buffering"):
        for gpus in (2, 4):
            result = _run_one(impl, gpus, n_functional, steps, trace=trace,
                              metrics=metrics)
            out.append(Experiment(
                impl=impl, gpus=gpus, result=result,
                paper_seconds=machines.PAPER_TABLE2[(impl, gpus)]))
    return out


def comparison_rows(experiments: Sequence[Experiment]):
    """(impl, gpus, simulated, paper, sim/paper) rows for reporting."""
    rows = []
    for e in experiments:
        rows.append((e.impl, e.gpus, format_hms(e.seconds),
                     format_hms(e.paper_seconds) if e.paper_seconds else "-",
                     f"{e.paper_ratio:.3f}" if e.paper_ratio else "-"))
    return rows


def speedup_table(experiments: Sequence[Experiment],
                  baseline_impl: str = "target",
                  baseline_gpus: int = 1) -> Dict[Tuple[str, int], float]:
    """Speedups vs the named baseline experiment."""
    base = next(e for e in experiments
                if e.impl == baseline_impl and e.gpus == baseline_gpus)
    return {(e.impl, e.gpus): base.seconds / e.seconds for e in experiments}


def format_experiments(experiments: Sequence[Experiment],
                       title: str = "") -> str:
    table = format_table(
        ["implementation", "GPUs", "simulated", "paper", "sim/paper"],
        comparison_rows(experiments))
    return f"{title}\n{table}" if title else table
