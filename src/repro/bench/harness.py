"""Experiment runners shared by the benchmark suite.

Each paper artifact (table/figure) has a ``run_*`` function returning plain
data structures plus formatting helpers producing the same rows the paper
reports, side by side with the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench import machines
from repro.obs.builtin import MetricsTool
from repro.somier import run_somier
from repro.somier.driver import SomierResult
from repro.util.format import format_hms, format_table


@dataclass
class Experiment:
    """One (implementation, device-count) measurement."""

    impl: str
    gpus: int
    result: SomierResult
    paper_seconds: Optional[float] = None
    #: critical-path headline + bottleneck verdict when the run was
    #: analyzed (``run_table*(analyze=True)``), else None
    critpath: Optional[Dict[str, object]] = None

    @property
    def seconds(self) -> float:
        return self.result.elapsed

    @property
    def paper_ratio(self) -> Optional[float]:
        if not self.paper_seconds:
            return None
        return self.seconds / self.paper_seconds

    @property
    def plan_cache_stats(self) -> Tuple[int, int]:
        """(hits, misses) of the spread launch-plan cache for this run."""
        return (int(self.result.stats.get("plan_cache_hits", 0)),
                int(self.result.stats.get("plan_cache_misses", 0)))

    @property
    def slackness(self) -> Optional[float]:
        if self.critpath is None:
            return None
        return float(self.critpath["slackness"])  # type: ignore[arg-type]

    @property
    def bottleneck(self) -> Optional[str]:
        if self.critpath is None:
            return None
        return self.critpath.get("bottleneck")  # type: ignore[return-value]


def _critpath_info(result: SomierResult) -> Optional[Dict[str, object]]:
    """Headline + bottleneck verdict of an analyzed run, or None."""
    rt = result.runtime
    if rt.causal is None:
        return None
    analysis = rt.analysis()
    info: Dict[str, object] = dict(analysis.headline())
    what_if = analysis.what_if()
    info["bottleneck"] = what_if.get("bottleneck")
    info["bottleneck_speedup"] = what_if.get("bottleneck_speedup")
    return info


def _run_one(impl: str, gpus: int, n_functional: int, steps: int,
             data_depend: bool = False, fuse_transfers: bool = False,
             trace: bool = False, metrics: bool = False,
             plan_cache: bool = True,
             analyze: bool = False) -> SomierResult:
    topo, cm = machines.paper_machine(gpus, n_functional=n_functional)
    cfg = machines.paper_somier_config(n_functional=n_functional, steps=steps)
    # Tool callbacks never touch virtual time, so metrics=True changes only
    # what is *reported* (SomierResult.metrics), never the elapsed numbers.
    # Likewise plan_cache=False changes host-side lowering work only — the
    # virtual timeline is bit-identical either way (tests assert this), and
    # the causal recorder (analyze=True) only observes.
    tools = (MetricsTool(),) if metrics else ()
    return run_somier(impl, cfg, devices=machines.paper_devices(gpus),
                      topology=topo, cost_model=cm,
                      data_depend=data_depend,
                      fuse_transfers=fuse_transfers, trace=trace,
                      plan_cache=plan_cache,
                      analyze=analyze or None,
                      tools=tools)


def run_table1(n_functional: int = 96, steps: int = machines.PAPER_STEPS,
               trace: bool = False, metrics: bool = False,
               analyze: bool = False) -> List[Experiment]:
    """Table I: One Buffer — target (1 GPU) vs target spread (1/2/4)."""
    rows = [("target", 1), ("one_buffer", 1), ("one_buffer", 2),
            ("one_buffer", 4)]
    out = []
    for impl, gpus in rows:
        result = _run_one(impl, gpus, n_functional, steps, trace=trace,
                          metrics=metrics, analyze=analyze)
        out.append(Experiment(impl=impl, gpus=gpus, result=result,
                              paper_seconds=machines.PAPER_TABLE1[(impl, gpus)],
                              critpath=_critpath_info(result)))
    return out


def run_table2(n_functional: int = 96, steps: int = machines.PAPER_STEPS,
               trace: bool = False, metrics: bool = False,
               analyze: bool = False) -> List[Experiment]:
    """Table II / Fig. 2: One Buffer vs Two Buffers vs Double Buffering."""
    out = []
    for impl in ("one_buffer", "two_buffers", "double_buffering"):
        for gpus in (2, 4):
            result = _run_one(impl, gpus, n_functional, steps, trace=trace,
                              metrics=metrics, analyze=analyze)
            out.append(Experiment(
                impl=impl, gpus=gpus, result=result,
                paper_seconds=machines.PAPER_TABLE2[(impl, gpus)],
                critpath=_critpath_info(result)))
    return out


def comparison_rows(experiments: Sequence[Experiment]):
    """(impl, gpus, simulated, paper, sim/paper) rows for reporting, plus
    (slackness, bottleneck) columns when the runs were analyzed."""
    analyzed = any(e.critpath is not None for e in experiments)
    rows = []
    for e in experiments:
        row = [e.impl, e.gpus, format_hms(e.seconds),
               format_hms(e.paper_seconds) if e.paper_seconds else "-",
               f"{e.paper_ratio:.3f}" if e.paper_ratio else "-"]
        if analyzed:
            row.append(f"{e.slackness:.2f}x" if e.slackness else "-")
            row.append(e.bottleneck or "-")
        rows.append(tuple(row))
    return rows


def speedup_table(experiments: Sequence[Experiment],
                  baseline_impl: str = "target",
                  baseline_gpus: int = 1) -> Dict[Tuple[str, int], float]:
    """Speedups vs the named baseline experiment."""
    base = next(e for e in experiments
                if e.impl == baseline_impl and e.gpus == baseline_gpus)
    return {(e.impl, e.gpus): base.seconds / e.seconds for e in experiments}


def format_experiments(experiments: Sequence[Experiment],
                       title: str = "") -> str:
    headers = ["implementation", "GPUs", "simulated", "paper", "sim/paper"]
    if any(e.critpath is not None for e in experiments):
        headers += ["slack", "bottleneck"]
    table = format_table(headers, comparison_rows(experiments))
    return f"{title}\n{table}" if title else table
