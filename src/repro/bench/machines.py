"""The calibrated CTE-POWER machine and the paper's workload constants.

Calibration (DESIGN.md §4): the only three fitted constants are

* the effective per-socket pageable-transfer bandwidth (19.4 GB/s),
* the aggregate host staging bandwidth (27.8 GB/s ~ 1.43x one socket),
* the device kernel throughput (1.01e9 work units/s, with the Somier
  kernels' work weights).

They are derived from the paper's Table I (17m40s / 13m15s / 8m22s for
1/2/4 GPUs with the One Buffer strategy) through the mechanistic model: a
run's time is (wire time per socket, serialized) + (kernel time / devices),
with the host staging path capping aggregate transfer throughput once both
sockets are active.  Everything else (buffer counts, chunk sizes, memcpy
counts, barrier structure) follows from the directives themselves.

The functional grid is scaled down (default 96 instead of 1200) with the
cost model's ``scale`` making virtual byte/iteration accounting match the
full-size problem — buffer planning against the real 16 GB V100 capacity
included.
"""

from __future__ import annotations

import re
from typing import List, Tuple, Union

from repro.sim.costmodel import CostModel
from repro.sim.topology import (
    ClusterTopology,
    NetworkLinkSpec,
    NodeTopology,
    cte_power_node,
    uniform_cluster,
    uniform_node,
)
from repro.somier.config import SomierConfig

#: the paper's grid resolution and step count
PAPER_N = 1200
PAPER_STEPS = 31

#: the device order used in the paper's listings (devices(1,0,3,...))
PAPER_DEVICE_ORDER = [1, 0, 3, 2]

#: calibrated constants (fitted to Table I at n_functional=96; see DESIGN.md)
LINK_BANDWIDTH = 20.6e9
STAGING_BANDWIDTH = 32.8e9
ITERS_PER_SECOND = 1.0e9
PER_CALL_LATENCY = 12e-6

#: inter-node fabric for the cluster machine: EDR-InfiniBand-class figures
#: (100 Gb/s effective, ~1.5 us per message) — not calibrated against the
#: paper (which is single-node), just a plausible fabric for the what-if.
NETWORK_BANDWIDTH = 12.5e9
NETWORK_LATENCY = 1.5e-6

#: Table I of the paper, in seconds ("(B)" = baseline).
PAPER_TABLE1 = {
    ("target", 1): 17 * 60 + 40.231,
    ("one_buffer", 1): 17 * 60 + 38.932,
    ("one_buffer", 2): 13 * 60 + 15.486,
    ("one_buffer", 4): 8 * 60 + 22.019,
}

#: Table II of the paper, in seconds.
PAPER_TABLE2 = {
    ("one_buffer", 2): 13 * 60 + 15.486,
    ("one_buffer", 4): 8 * 60 + 22.019,
    ("two_buffers", 2): 14 * 60 + 29.599,
    ("two_buffers", 4): 8 * 60 + 26.674,
    ("double_buffering", 2): 14 * 60 + 4.230,
    ("double_buffering", 4): 8 * 60 + 51.176,
}


def paper_machine(num_devices: int = 4,
                  n_functional: int = 96) -> Tuple[NodeTopology, CostModel]:
    """The calibrated CTE-POWER node + cost model for a functional grid of
    ``n_functional`` standing in for the paper's 1200."""
    scale = (PAPER_N / n_functional) ** 3
    topo = cte_power_node(num_devices,
                          link_bandwidth=LINK_BANDWIDTH,
                          staging_bandwidth=STAGING_BANDWIDTH,
                          per_call_latency=PER_CALL_LATENCY,
                          iters_per_second=ITERS_PER_SECOND)
    return topo, CostModel(scale=scale)


def paper_cluster_machine(num_nodes: int, devices_per_node: int,
                          n_functional: int = 96
                          ) -> Tuple[ClusterTopology, CostModel]:
    """``num_nodes`` CTE-POWER-calibrated nodes behind an InfiniBand-class
    fabric — the cluster-scale what-if built from the paper's machine.

    Each node reuses the Table-I calibration of :func:`paper_machine`;
    the inter-node network (:data:`NETWORK_BANDWIDTH`,
    :data:`NETWORK_LATENCY`) is an assumption, not a fit.
    """
    scale = (PAPER_N / n_functional) ** 3
    network = NetworkLinkSpec(bandwidth_bytes_per_s=NETWORK_BANDWIDTH,
                              per_message_latency=NETWORK_LATENCY)
    topo = uniform_cluster(num_nodes, devices_per_node,
                           network=network,
                           link_bandwidth=LINK_BANDWIDTH,
                           staging_bandwidth=STAGING_BANDWIDTH,
                           per_call_latency=PER_CALL_LATENCY,
                           iters_per_second=ITERS_PER_SECOND)
    return topo, CostModel(scale=scale)


def machine_for_spec(spec: str, n_functional: int = 96
                     ) -> Tuple[Union[NodeTopology, ClusterTopology],
                                CostModel]:
    """Calibrated (topology, cost model) for a ``--machine`` spec.

    Same grammar as :func:`repro.sim.topology.parse_machine_spec`
    (``cluster:NxM`` / ``cte-power[:N]``) but built from the Table-I
    calibration instead of the generic test defaults.
    """
    text = spec.strip()
    m = re.fullmatch(r"cluster:(\d+)x(\d+)", text, re.IGNORECASE)
    if m:
        return paper_cluster_machine(int(m.group(1)), int(m.group(2)),
                                     n_functional=n_functional)
    m = re.fullmatch(r"cte-power(?::(\d+))?", text, re.IGNORECASE)
    if m:
        return paper_machine(int(m.group(1)) if m.group(1) else 4,
                             n_functional=n_functional)
    m = re.fullmatch(r"gpus:(\d+)", text, re.IGNORECASE)
    if m:
        num = int(m.group(1))
        if 1 <= num <= 4:
            return paper_machine(num, n_functional=n_functional)
        scale = (PAPER_N / n_functional) ** 3
        topo = uniform_node(num, devices_per_socket=2,
                            link_bandwidth=LINK_BANDWIDTH,
                            staging_bandwidth=STAGING_BANDWIDTH,
                            per_call_latency=PER_CALL_LATENCY,
                            iters_per_second=ITERS_PER_SECOND)
        return topo, CostModel(scale=scale)
    raise ValueError(
        f"unknown machine spec {spec!r} "
        "(expected 'cluster:NxM', 'cte-power[:N]' or 'gpus:N')")


def paper_somier_config(n_functional: int = 96,
                        steps: int = PAPER_STEPS) -> SomierConfig:
    """The Somier workload at reduced functional resolution."""
    return SomierConfig(n=n_functional, steps=steps)


def paper_devices(num_devices: int) -> List[int]:
    """The first *num_devices* entries of the paper's device order, kept to
    valid ids for smaller nodes."""
    return [d for d in PAPER_DEVICE_ORDER if d < num_devices]
