"""The calibrated CTE-POWER machine and the paper's workload constants.

Calibration (DESIGN.md §4): the only three fitted constants are

* the effective per-socket pageable-transfer bandwidth (19.4 GB/s),
* the aggregate host staging bandwidth (27.8 GB/s ~ 1.43x one socket),
* the device kernel throughput (1.01e9 work units/s, with the Somier
  kernels' work weights).

They are derived from the paper's Table I (17m40s / 13m15s / 8m22s for
1/2/4 GPUs with the One Buffer strategy) through the mechanistic model: a
run's time is (wire time per socket, serialized) + (kernel time / devices),
with the host staging path capping aggregate transfer throughput once both
sockets are active.  Everything else (buffer counts, chunk sizes, memcpy
counts, barrier structure) follows from the directives themselves.

The functional grid is scaled down (default 96 instead of 1200) with the
cost model's ``scale`` making virtual byte/iteration accounting match the
full-size problem — buffer planning against the real 16 GB V100 capacity
included.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim.costmodel import CostModel
from repro.sim.topology import NodeTopology, cte_power_node
from repro.somier.config import SomierConfig

#: the paper's grid resolution and step count
PAPER_N = 1200
PAPER_STEPS = 31

#: the device order used in the paper's listings (devices(1,0,3,...))
PAPER_DEVICE_ORDER = [1, 0, 3, 2]

#: calibrated constants (fitted to Table I at n_functional=96; see DESIGN.md)
LINK_BANDWIDTH = 20.6e9
STAGING_BANDWIDTH = 32.8e9
ITERS_PER_SECOND = 1.0e9
PER_CALL_LATENCY = 12e-6

#: Table I of the paper, in seconds ("(B)" = baseline).
PAPER_TABLE1 = {
    ("target", 1): 17 * 60 + 40.231,
    ("one_buffer", 1): 17 * 60 + 38.932,
    ("one_buffer", 2): 13 * 60 + 15.486,
    ("one_buffer", 4): 8 * 60 + 22.019,
}

#: Table II of the paper, in seconds.
PAPER_TABLE2 = {
    ("one_buffer", 2): 13 * 60 + 15.486,
    ("one_buffer", 4): 8 * 60 + 22.019,
    ("two_buffers", 2): 14 * 60 + 29.599,
    ("two_buffers", 4): 8 * 60 + 26.674,
    ("double_buffering", 2): 14 * 60 + 4.230,
    ("double_buffering", 4): 8 * 60 + 51.176,
}


def paper_machine(num_devices: int = 4,
                  n_functional: int = 96) -> Tuple[NodeTopology, CostModel]:
    """The calibrated CTE-POWER node + cost model for a functional grid of
    ``n_functional`` standing in for the paper's 1200."""
    scale = (PAPER_N / n_functional) ** 3
    topo = cte_power_node(num_devices,
                          link_bandwidth=LINK_BANDWIDTH,
                          staging_bandwidth=STAGING_BANDWIDTH,
                          per_call_latency=PER_CALL_LATENCY,
                          iters_per_second=ITERS_PER_SECOND)
    return topo, CostModel(scale=scale)


def paper_somier_config(n_functional: int = 96,
                        steps: int = PAPER_STEPS) -> SomierConfig:
    """The Somier workload at reduced functional resolution."""
    return SomierConfig(n=n_functional, steps=steps)


def paper_devices(num_devices: int) -> List[int]:
    """The first *num_devices* entries of the paper's device order, kept to
    valid ids for smaller nodes."""
    return [d for d in PAPER_DEVICE_ORDER if d < num_devices]
