"""Benchmark harness: machine presets, experiment runners and reporting."""

from repro.bench.machines import (
    PAPER_N,
    PAPER_STEPS,
    PAPER_DEVICE_ORDER,
    paper_machine,
    paper_somier_config,
    PAPER_TABLE1,
    PAPER_TABLE2,
)
from repro.bench.harness import (
    Experiment,
    run_table1,
    run_table2,
    speedup_table,
    comparison_rows,
)

__all__ = [
    "PAPER_N",
    "PAPER_STEPS",
    "PAPER_DEVICE_ORDER",
    "paper_machine",
    "paper_somier_config",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "Experiment",
    "run_table1",
    "run_table2",
    "speedup_table",
    "comparison_rows",
]
